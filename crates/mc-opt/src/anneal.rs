//! Simulated annealing — an alternative randomized optimiser used to
//! ablate the paper's GA choice (DESIGN.md §5: is the GA doing anything a
//! simpler single-trajectory search would not?).

use crate::ga::GeneBounds;
use crate::OptError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulated-annealing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Total candidate evaluations.
    pub iterations: usize,
    /// Initial temperature (in fitness units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in (0, 1).
    pub cooling: f64,
    /// Neighbour step size as a fraction of each gene's range.
    pub step_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            iterations: 5_000,
            initial_temperature: 0.1,
            cooling: 0.999,
            step_fraction: 0.1,
            seed: 0,
        }
    }
}

impl SaConfig {
    fn validate(&self) -> Result<(), OptError> {
        let err = |reason| Err(OptError::InvalidConfig { reason });
        if self.iterations == 0 {
            return err("iterations must be non-zero");
        }
        if !self.initial_temperature.is_finite() || self.initial_temperature <= 0.0 {
            return err("initial_temperature must be positive");
        }
        if !self.cooling.is_finite() || !(0.0..1.0).contains(&self.cooling) {
            return err("cooling must be in (0, 1)");
        }
        if !self.step_fraction.is_finite() || self.step_fraction <= 0.0 || self.step_fraction > 1.0
        {
            return err("step_fraction must be in (0, 1]");
        }
        Ok(())
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaResult {
    /// Best chromosome found.
    pub best: Vec<f64>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Number of accepted moves (diagnostic).
    pub accepted: usize,
}

/// Maximises `fitness` over `bounds` by simulated annealing.
///
/// Non-finite fitness values are treated as `f64::NEG_INFINITY`.
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] for invalid hyper-parameters and
/// [`OptError::EmptyChromosome`] when `bounds` is empty.
///
/// # Example
///
/// ```
/// use mc_opt::anneal::{anneal, SaConfig};
/// use mc_opt::ga::GeneBounds;
///
/// # fn main() -> Result<(), mc_opt::OptError> {
/// let bounds = [GeneBounds::new(0.0, 10.0)?];
/// let r = anneal(&bounds, |c| -(c[0] - 4.0).powi(2), &SaConfig::default())?;
/// assert!((r.best[0] - 4.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn anneal<F>(bounds: &[GeneBounds], fitness: F, cfg: &SaConfig) -> Result<SaResult, OptError>
where
    F: Fn(&[f64]) -> f64,
{
    cfg.validate()?;
    if bounds.is_empty() {
        return Err(OptError::EmptyChromosome);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let eval = |c: &[f64]| {
        let f = fitness(c);
        if f.is_finite() {
            f
        } else {
            f64::NEG_INFINITY
        }
    };
    let mut current: Vec<f64> = bounds
        .iter()
        .map(|b| {
            if b.hi > b.lo {
                rng.random_range(b.lo..=b.hi)
            } else {
                b.lo
            }
        })
        .collect();
    let mut current_fitness = eval(&current);
    let mut best = current.clone();
    let mut best_fitness = current_fitness;
    let mut temperature = cfg.initial_temperature;
    let mut accepted = 0usize;

    for _ in 0..cfg.iterations {
        // Perturb one random gene by a uniform step within ±fraction·range.
        let g = rng.random_range(0..bounds.len());
        let range = bounds[g].hi - bounds[g].lo;
        let mut candidate = current.clone();
        if range > 0.0 {
            let step = (rng.random::<f64>() * 2.0 - 1.0) * cfg.step_fraction * range;
            candidate[g] = (candidate[g] + step).clamp(bounds[g].lo, bounds[g].hi);
        }
        let candidate_fitness = eval(&candidate);
        let delta = candidate_fitness - current_fitness;
        // From an infeasible point (fitness -inf) `delta` is NaN against
        // another infeasible candidate, which would reject every move and
        // freeze the chain; walk freely instead until feasible ground is
        // found (`best` only updates on strictly greater fitness, so the
        // walk never pollutes the result).
        let accept = current_fitness == f64::NEG_INFINITY
            || delta >= 0.0
            || (temperature > 0.0 && rng.random::<f64>() < (delta / temperature).exp());
        if accept {
            current = candidate;
            current_fitness = candidate_fitness;
            accepted += 1;
            if current_fitness > best_fitness {
                best_fitness = current_fitness;
                best = current.clone();
            }
        }
        temperature *= cfg.cooling;
    }
    Ok(SaResult {
        best,
        best_fitness,
        accepted,
    })
}

/// Runs `restarts` independent annealing chains in parallel on `pool`
/// and returns the best result (ties broken by the lowest restart index,
/// so the winner is independent of thread count).
///
/// Chain `i` uses seed `cfg.seed + i`; restart 0 is bit-identical to a
/// plain [`anneal`] call with `cfg`. SA is a single serial trajectory —
/// unlike the GA its inner loop cannot fan out without changing the RNG
/// stream — so the parallel axis here is whole restarts, which also
/// improves solution quality on multi-modal objectives.
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] for invalid hyper-parameters or
/// `restarts == 0`, and [`OptError::EmptyChromosome`] when `bounds` is
/// empty.
pub fn anneal_multistart<F>(
    bounds: &[GeneBounds],
    fitness: F,
    cfg: &SaConfig,
    restarts: usize,
    pool: &mc_par::WorkerPool,
) -> Result<SaResult, OptError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    cfg.validate()?;
    if bounds.is_empty() {
        return Err(OptError::EmptyChromosome);
    }
    if restarts == 0 {
        return Err(OptError::InvalidConfig {
            reason: "restarts must be non-zero",
        });
    }
    let mut results: Vec<Result<SaResult, OptError>> = Vec::new();
    results.resize_with(restarts, || Err(OptError::EmptyChromosome));
    pool.fill(&mut results, |i| {
        let chain = SaConfig {
            seed: cfg.seed.wrapping_add(i as u64),
            ..*cfg
        };
        anneal(bounds, &fitness, &chain)
    });
    let mut best: Option<SaResult> = None;
    for r in results {
        let r = r?;
        // Strictly-greater keeps the lowest-index winner on ties.
        if best
            .as_ref()
            .is_none_or(|b| r.best_fitness > b.best_fitness)
        {
            best = Some(r);
        }
    }
    Ok(best.expect("restarts > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let ok = SaConfig::default();
        assert!(ok.validate().is_ok());
        assert!(SaConfig {
            iterations: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            initial_temperature: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SaConfig { cooling: 1.0, ..ok }.validate().is_err());
        assert!(SaConfig {
            step_fraction: 0.0,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn finds_one_dimensional_optimum() {
        let bounds = [GeneBounds::new(-5.0, 5.0).unwrap()];
        let r = anneal(&bounds, |c| -(c[0] - 2.0).powi(2), &SaConfig::default()).unwrap();
        assert!((r.best[0] - 2.0).abs() < 0.3, "got {}", r.best[0]);
        assert!(r.accepted > 0);
    }

    #[test]
    fn finds_multi_dimensional_optimum() {
        let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); 4];
        let cfg = SaConfig {
            iterations: 20_000,
            ..SaConfig::default()
        };
        let r = anneal(
            &bounds,
            |c| -c.iter().map(|x| (x - 6.0).powi(2)).sum::<f64>(),
            &cfg,
        )
        .unwrap();
        for x in &r.best {
            assert!((x - 6.0).abs() < 0.6, "got {:?}", r.best);
        }
    }

    #[test]
    fn respects_bounds_and_is_deterministic() {
        let bounds = [
            GeneBounds::new(1.0, 2.0).unwrap(),
            GeneBounds::new(-3.0, -1.0).unwrap(),
        ];
        let cfg = SaConfig::default();
        let a = anneal(&bounds, |c| c.iter().sum(), &cfg).unwrap();
        let b = anneal(&bounds, |c| c.iter().sum(), &cfg).unwrap();
        assert_eq!(a, b);
        assert!((1.0..=2.0).contains(&a.best[0]));
        assert!((-3.0..=-1.0).contains(&a.best[1]));
    }

    #[test]
    fn empty_chromosome_is_rejected() {
        assert!(matches!(
            anneal(&[], |_| 0.0, &SaConfig::default()).unwrap_err(),
            OptError::EmptyChromosome
        ));
    }

    #[test]
    fn non_finite_fitness_never_wins() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap()];
        let r = anneal(
            &bounds,
            |c| if c[0] < 0.5 { f64::NAN } else { c[0] },
            &SaConfig::default(),
        )
        .unwrap();
        assert!(r.best_fitness.is_finite());
        assert!(r.best[0] >= 0.5);
    }

    #[test]
    fn multistart_with_one_restart_matches_plain_anneal() {
        let bounds = [GeneBounds::new(-5.0, 5.0).unwrap()];
        let cfg = SaConfig::default();
        let f = |c: &[f64]| -(c[0] - 2.0).powi(2);
        let single = anneal(&bounds, f, &cfg).unwrap();
        let multi = anneal_multistart(&bounds, f, &cfg, 1, &mc_par::WorkerPool::serial()).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn multistart_is_identical_for_any_thread_count() {
        let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); 3];
        let cfg = SaConfig {
            iterations: 2_000,
            ..SaConfig::default()
        };
        let f = |c: &[f64]| -c.iter().map(|x| (x - 6.0).powi(2)).sum::<f64>();
        let runs: Vec<SaResult> = [1usize, 2, 0]
            .iter()
            .map(|&threads| {
                let pool = mc_par::WorkerPool::new(threads);
                anneal_multistart(&bounds, f, &cfg, 8, &pool).unwrap()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn multistart_never_does_worse_than_its_first_chain() {
        let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); 4];
        let cfg = SaConfig {
            iterations: 3_000,
            ..SaConfig::default()
        };
        let f = |c: &[f64]| -c.iter().map(|x| (x - 6.0).powi(2)).sum::<f64>();
        let first = anneal(&bounds, f, &cfg).unwrap();
        let multi = anneal_multistart(&bounds, f, &cfg, 6, &mc_par::WorkerPool::serial()).unwrap();
        assert!(multi.best_fitness >= first.best_fitness);
    }

    #[test]
    fn multistart_rejects_zero_restarts() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap()];
        assert!(matches!(
            anneal_multistart(
                &bounds,
                |c: &[f64]| c[0],
                &SaConfig::default(),
                0,
                &mc_par::WorkerPool::serial()
            )
            .unwrap_err(),
            OptError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn comparable_quality_to_ga_on_the_wcet_problem() {
        // The ablation claim: on the paper's smooth low-dimensional
        // objective, SA lands within a few percent of the GA.
        use mc_task::time::Duration;
        use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};
        let mk = |id: u32, acet: f64, sigma: f64, wcet_ms: u64| {
            McTask::builder(TaskId::new(id))
                .criticality(Criticality::Hi)
                .period(Duration::from_millis(100))
                .c_lo(Duration::from_millis(wcet_ms))
                .c_hi(Duration::from_millis(wcet_ms))
                .profile(ExecutionProfile::new(acet, sigma, wcet_ms as f64 * 1e6).unwrap())
                .build()
                .unwrap()
        };
        let ts =
            TaskSet::from_tasks(vec![mk(0, 3.0e6, 1.0e6, 40), mk(1, 5.0e6, 2.0e6, 30)]).unwrap();
        let problem =
            crate::problem::WcetProblem::from_taskset(&ts, crate::ProblemConfig::default())
                .unwrap();
        let bounds = problem.bounds().unwrap();
        let sa = anneal(
            &bounds,
            |c| problem.objective(c).fitness,
            &SaConfig {
                iterations: 20_000,
                ..SaConfig::default()
            },
        )
        .unwrap();
        let ga = problem.solve_ga(&crate::GaConfig::default()).unwrap();
        assert!(
            sa.best_fitness >= 0.97 * ga.objective.fitness,
            "SA {} vs GA {}",
            sa.best_fitness,
            ga.objective.fitness
        );
    }
}
