//! Optimisation substrate for the `chebymc` workspace.
//!
//! Solves the paper's §IV-C problem: choose a Chebyshev factor `nᵢ` per
//! high-criticality task to maximise `(1 − P_MS) · max(U_LC^LO)` (Eq. 13)
//! subject to EDF-VD schedulability (Eq. 8) and `C_LO ≤ WCET_pes` (Eq. 9).
//!
//! * [`ga`] — a from-scratch genetic algorithm with the paper's operators
//!   (two-point crossover, single-point mutation, 5-way tournament,
//!   `p_c = 0.8`, `p_m = 0.2`); the DEAP stand-in.
//! * [`problem`] — the objective (Eqs. 10–13) over a task set's HC tasks.
//! * [`incremental`] — the objective's hot-path engine: per-task
//!   invariants in struct-of-arrays layout, blocked partial reductions for
//!   delta-fitness (a k-gene change re-folds only the touched blocks, bit
//!   identical to a full pass), and batch evaluation over flat
//!   populations.
//! * [`grid`] — uniform-n sweeps (Figs. 2–3) and exhaustive search used to
//!   cross-check the GA.
//!
//! # Example
//!
//! ```
//! use mc_opt::ga::{optimize, GaConfig, GeneBounds};
//!
//! # fn main() -> Result<(), mc_opt::OptError> {
//! let bounds = [GeneBounds::new(0.0, 10.0)?, GeneBounds::new(0.0, 10.0)?];
//! let r = optimize(&bounds, |c| -(c[0] - 2.0).abs() - (c[1] - 8.0).abs(), &GaConfig::default())?;
//! assert!((r.best[0] - 2.0).abs() < 0.5);
//! assert!((r.best[1] - 8.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod anneal;
pub mod ga;
pub mod grid;
pub mod incremental;
pub mod problem;

use mc_task::TaskId;
use std::error::Error;
use std::fmt;

pub use ga::{EvalStats, GaConfig, GaResult, GeneBounds};
pub use incremental::{
    optimize_incremental, optimize_incremental_with_pool, FlatPopulation, ObjectiveCache,
};
pub use problem::{ObjectiveValue, ProblemConfig, Solution, WcetProblem};

/// Errors produced by the optimisation substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// A configuration value is out of range.
    InvalidConfig {
        /// What was violated.
        reason: &'static str,
    },
    /// The chromosome would have no genes.
    EmptyChromosome,
    /// An HC task lacks the execution profile the problem needs.
    MissingProfile {
        /// The offending task.
        id: TaskId,
    },
    /// A factor vector's length does not match the problem dimension.
    DimensionMismatch {
        /// Expected (HC task count).
        expected: usize,
        /// Provided.
        got: usize,
    },
    /// A solution references a task that is not in the target set.
    UnknownTask {
        /// The missing task.
        id: TaskId,
    },
    /// A task-model error while applying a solution.
    Task(mc_task::TaskError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::InvalidConfig { reason } => {
                write!(f, "invalid optimiser configuration: {reason}")
            }
            OptError::EmptyChromosome => write!(f, "optimisation requires at least one gene"),
            OptError::MissingProfile { id } => {
                write!(f, "HC task {id} has no execution profile")
            }
            OptError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} factors, got {got}")
            }
            OptError::UnknownTask { id } => write!(f, "task {id} not found in the target set"),
            OptError::Task(e) => write!(f, "task error: {e}"),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Task(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mc_task::TaskError> for OptError {
    fn from(e: mc_task::TaskError) -> Self {
        OptError::Task(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(OptError::EmptyChromosome.to_string().contains("gene"));
        assert!(OptError::MissingProfile { id: TaskId::new(2) }
            .to_string()
            .contains("τ2"));
        assert!(OptError::DimensionMismatch {
            expected: 3,
            got: 1
        }
        .to_string()
        .contains("expected 3"));
    }

    #[test]
    fn task_errors_convert_and_chain() {
        let e: OptError = mc_task::TaskError::DuplicateTaskId { id: TaskId::new(0) }.into();
        assert!(matches!(e, OptError::Task(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }
}
