//! Incremental, batch-oriented evaluation of the paper's objective.
//!
//! The GA's hot loop evaluates Eq. 13 millions of times, but two-point
//! crossover and single-gene mutation change only a *contiguous slice* of
//! each child — most per-task terms are inherited bitwise from a parent
//! whose objective is already known. This module exploits that:
//!
//! * [`ObjectiveCache`] holds the per-task invariants (`ACET/T`, `σ/T`,
//!   the Eq. 9 feasibility threshold on `n`) in struct-of-arrays layout,
//!   and defines the objective's **canonical reduction order** over fixed
//!   16-gene *blocks*: each block folds its genes left-to-right into a
//!   partial (utilisation sum, no-switch product, feasibility break), and
//!   the block partials fold left-to-right into the final value. Float
//!   addition is not associative, so blocking is a *reassociation* — the
//!   blocked order is therefore the definition, used identically by every
//!   path (scalar, batch, delta, any thread count), and all paths agree
//!   bitwise. For ≤ 16 genes — a full paper-scale problem — one block
//!   covers the genome and the blocked order coincides bitwise with the
//!   plain left-to-right loop the objective historically used (`0.0 + x`
//!   and `1.0 × x` are exact); beyond that, regrouping shifts results by
//!   at most the usual last-ulp reassociation noise.
//! * [`ObjectiveCache::eval_delta`] re-derives a child's value from its
//!   parent's stored block partials: candidate blocks (the crossover
//!   range and the mutated gene) are compared bitwise against the parent
//!   and only differing blocks are re-folded. Identical-by-construction
//!   to a full evaluation, and cross-checked by a debug-mode shadow
//!   full recompute.
//! * [`FlatPopulation`] is the strided SoA genome buffer shared with the
//!   GA, and [`ObjectiveCache::objective_batch`] evaluates a whole
//!   population against it in one contiguous pass (optionally fanned out
//!   over an [`mc_par::WorkerPool`], bit-identical for any thread count).
//!
//! The GA entry points [`optimize_incremental`] /
//! [`optimize_incremental_with_pool`] run the standard GA loop with the
//! incremental backend and report [`EvalStats`] — how many evaluations
//! were full folds, delta patches, or carried scores.

use crate::ga::{run_ga, EvalStats, GaConfig, GaResult, GeneBounds, IncrementalBackend};
use crate::problem::{HcTaskParams, ObjectiveValue};
use crate::OptError;
use mc_par::{DisjointSlice, ThreadBudget, WorkerPool};
use mc_sched::analysis::edf_vd;
use mc_stats::chebyshev;

/// Genes per reduction block. Small enough that a single mutated gene
/// re-folds at most 16 terms; large enough that the per-block bookkeeping
/// (24 bytes) stays a fraction of the genes it summarises.
pub const BLOCK_LEN: usize = 16;

/// In-block sentinel: no gene in the block failed Eq. 9.
const NO_BREAK: u32 = u32::MAX;

/// Partial reduction of one 16-gene block: the LO-utilisation sum and
/// no-switch product over the block's genes, folded left-to-right, plus
/// the in-block index of the first infeasible gene (if any; folding stops
/// there, matching the plain loop's early exit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    sum: f64,
    prod: f64,
    brk: u32,
}

impl Default for Block {
    /// The empty-block identity: zero sum, unit product, no break.
    fn default() -> Self {
        Block {
            sum: 0.0,
            prod: 1.0,
            brk: NO_BREAK,
        }
    }
}

/// Outcome of one [`ObjectiveCache::eval_delta`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaEval {
    /// The child's objective, or `None` when every candidate block was
    /// bitwise identical to the parent's — the parent's score (and its
    /// copied block row) stand unchanged.
    pub value: Option<ObjectiveValue>,
    /// Blocks re-folded by this call.
    pub blocks_recomputed: u32,
    /// Genes visited by those re-folds (the delta's actual work).
    pub genes_recomputed: u32,
}

/// A population of genomes in flat strided (struct-of-arrays) layout:
/// individual `i` occupies `[i·genes, (i+1)·genes)` of one contiguous
/// buffer, so batch evaluation walks memory sequentially and per-row
/// parallel writes never alias.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPopulation {
    data: Vec<f64>,
    genes: usize,
}

impl FlatPopulation {
    /// An all-zero population of `individuals × genes`.
    ///
    /// # Panics
    ///
    /// Panics when `genes == 0`.
    pub fn zeroed(individuals: usize, genes: usize) -> Self {
        assert!(genes > 0, "a genome must have at least one gene");
        FlatPopulation {
            data: vec![0.0; individuals * genes],
            genes,
        }
    }

    /// Number of individuals.
    pub fn individuals(&self) -> usize {
        self.data.len() / self.genes
    }

    /// Genes per individual.
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Individual `i`'s genome.
    pub fn genome(&self, i: usize) -> &[f64] {
        &self.data[i * self.genes..(i + 1) * self.genes]
    }

    /// Mutable access to individual `i`'s genome.
    pub fn genome_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.genes..(i + 1) * self.genes]
    }

    /// The whole buffer, individual-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the whole buffer, individual-major.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates the genomes in order.
    pub fn genomes(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.genes)
    }
}

/// Per-task objective invariants in struct-of-arrays layout, plus the
/// blocked-reduction machinery built on them. See the
/// [module docs](self) for the layout and the bit-identity argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveCache {
    /// `ACET/T` per task: the constant term of the LO utilisation.
    u_acet: Vec<f64>,
    /// `σ/T` per task: the per-factor slope of the LO utilisation.
    u_sigma: Vec<f64>,
    /// Largest factor passing Eq. 9's tolerance band
    /// (`ACET + n·σ ≤ WCET_pes + 1e-6`). `INFINITY` when σ = 0 and the
    /// ACET already fits; `NEG_INFINITY` when no factor can be feasible.
    n_max: Vec<f64>,
    /// `U_HC^HI` of the underlying set (fixed by the task set, needed by
    /// the Eq. 11–12 EDF-VD bound).
    u_hc_hi: f64,
}

impl ObjectiveCache {
    /// Precomputes the invariants for one task list.
    pub fn new(tasks: &[HcTaskParams], u_hc_hi: f64) -> Self {
        let mut cache = ObjectiveCache {
            u_acet: Vec::with_capacity(tasks.len()),
            u_sigma: Vec::with_capacity(tasks.len()),
            n_max: Vec::with_capacity(tasks.len()),
            u_hc_hi,
        };
        for t in tasks {
            let slack = t.wcet_pes + 1e-6 - t.acet;
            let n_max = if t.sigma > 0.0 {
                slack / t.sigma
            } else if slack >= 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            cache.u_acet.push(t.acet / t.period);
            cache.u_sigma.push(t.sigma / t.period);
            cache.n_max.push(n_max);
        }
        cache
    }

    /// Number of decision variables.
    pub fn dimension(&self) -> usize {
        self.u_acet.len()
    }

    /// Blocks per genome (`⌈dimension / 16⌉`).
    pub fn n_blocks(&self) -> usize {
        self.dimension().div_ceil(BLOCK_LEN)
    }

    /// `U_HC^HI` the cache was built with.
    pub fn u_hc_hi(&self) -> f64 {
        self.u_hc_hi
    }

    /// The gene index range of block `b`.
    fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        b * BLOCK_LEN..((b + 1) * BLOCK_LEN).min(self.dimension())
    }

    /// Evaluates the objective at a factor vector.
    ///
    /// # Panics
    ///
    /// Panics when `factors.len() != self.dimension()`.
    pub fn eval(&self, factors: &[f64]) -> ObjectiveValue {
        assert_eq!(factors.len(), self.dimension());
        self.eval_iter(factors.iter().copied())
    }

    /// The reference evaluation loop: one streaming pass, multiply-add per
    /// task, no allocation, accumulating in the canonical *blocked* order
    /// (16-gene partials folded left-to-right — see the module docs).
    /// Every other evaluation path in this module is bitwise identical to
    /// this one; for ≤ 16 genes the blocked order coincides bitwise with
    /// the plain left-to-right fold the objective historically used.
    pub(crate) fn eval_iter(&self, factors: impl Iterator<Item = f64>) -> ObjectiveValue {
        let mut u_hc_lo = 0.0;
        let mut no_switch = 1.0;
        let mut block_sum = 0.0;
        let mut block_prod = 1.0;
        for (i, n) in factors.enumerate() {
            if i % BLOCK_LEN == 0 && i > 0 {
                u_hc_lo += block_sum;
                no_switch *= block_prod;
                block_sum = 0.0;
                block_prod = 1.0;
            }
            // Eq. 9 as a precomputed threshold on `n` (death penalty —
            // bounds normally repair this already). The finiteness check
            // also guards the σ = 0 case, where `n_max` is infinite and
            // an infinite factor would otherwise slip through.
            if !n.is_finite() || n < 0.0 || n > self.n_max[i] {
                // Fold the broken block's partial sum (matching
                // `combine`'s early exit); its product is never consumed.
                u_hc_lo += block_sum;
                return ObjectiveValue {
                    p_ms: 1.0,
                    max_u_lc_lo: 0.0,
                    u_hc_lo,
                    fitness: 0.0,
                };
            }
            block_sum += self.u_acet[i] + n * self.u_sigma[i];
            block_prod *= 1.0 - chebyshev::one_sided_bound(n);
        }
        u_hc_lo += block_sum;
        no_switch *= block_prod;
        let p_ms = 1.0 - no_switch;
        let max_u_lc_lo = edf_vd::max_u_lc_lo(u_hc_lo, self.u_hc_hi);
        ObjectiveValue {
            p_ms,
            max_u_lc_lo,
            u_hc_lo,
            fitness: (1.0 - p_ms) * max_u_lc_lo,
        }
    }

    /// Folds block `b` of `genome`. Pure in the block's genes: the result
    /// never depends on other blocks, which is what makes per-block
    /// patching sound.
    fn eval_block(&self, b: usize, genome: &[f64]) -> Block {
        let range = self.block_range(b);
        let start = range.start;
        let mut sum = 0.0;
        let mut prod = 1.0;
        for i in range {
            let n = genome[i];
            if !n.is_finite() || n < 0.0 || n > self.n_max[i] {
                // Partial fold up to the break, matching the reference
                // loop's early exit; the product past a break is never
                // consumed (see `combine`).
                return Block {
                    sum,
                    prod,
                    brk: (i - start) as u32,
                };
            }
            sum += self.u_acet[i] + n * self.u_sigma[i];
            prod *= 1.0 - chebyshev::one_sided_bound(n);
        }
        Block {
            sum,
            prod,
            brk: NO_BREAK,
        }
    }

    /// Folds stored block partials into the objective. Identical additions
    /// and multiplications as [`ObjectiveCache::eval_iter`]: `0.0 + x` and
    /// `1.0 × x` are exact, so seeding the fold with the identities and
    /// then folding per-block partials reproduces the flat loop bit for
    /// bit.
    pub fn combine(&self, blocks: &[Block]) -> ObjectiveValue {
        assert_eq!(blocks.len(), self.n_blocks());
        let mut u_hc_lo = 0.0;
        let mut no_switch = 1.0;
        for blk in blocks {
            u_hc_lo += blk.sum;
            if blk.brk != NO_BREAK {
                return ObjectiveValue {
                    p_ms: 1.0,
                    max_u_lc_lo: 0.0,
                    u_hc_lo,
                    fitness: 0.0,
                };
            }
            no_switch *= blk.prod;
        }
        let p_ms = 1.0 - no_switch;
        let max_u_lc_lo = edf_vd::max_u_lc_lo(u_hc_lo, self.u_hc_hi);
        ObjectiveValue {
            p_ms,
            max_u_lc_lo,
            u_hc_lo,
            fitness: (1.0 - p_ms) * max_u_lc_lo,
        }
    }

    /// Full evaluation that also materialises the genome's block partials
    /// into `blocks` (for later delta patching). Every block is folded —
    /// even past an infeasibility break, so a future delta that repairs
    /// the break finds the later partials valid.
    ///
    /// # Panics
    ///
    /// Panics on genome/buffer dimension mismatch.
    pub fn eval_full(&self, genome: &[f64], blocks: &mut [Block]) -> ObjectiveValue {
        assert_eq!(genome.len(), self.dimension());
        assert_eq!(blocks.len(), self.n_blocks());
        for (b, blk) in blocks.iter_mut().enumerate() {
            *blk = self.eval_block(b, genome);
        }
        let value = self.combine(blocks);
        debug_assert!(bits_eq(value, self.eval_iter(genome.iter().copied())));
        value
    }

    /// Bitwise-compares one block's genes between child and parent.
    /// `to_bits` equality is exact and NaN-safe — a NaN gene always reads
    /// as "differs", which errs toward recomputation, never toward a
    /// stale carry.
    fn block_differs(&self, b: usize, child: &[f64], parent: &[f64]) -> bool {
        let range = self.block_range(b);
        child[range.clone()]
            .iter()
            .zip(&parent[range])
            .any(|(c, p)| c.to_bits() != p.to_bits())
    }

    /// Derives a child's objective from its parent's block partials.
    ///
    /// `child` may differ from `parent` only inside the candidate ranges:
    /// the inclusive `crossover` gene span and the `mutated` gene (this is
    /// exactly what the GA's variation operators guarantee — clamping is
    /// the identity on already-in-bounds genes). The parent's partials are
    /// copied into `child_blocks`, candidate blocks that differ bitwise
    /// are re-folded, and the partials are re-combined. By block purity
    /// this is bit-identical to a full evaluation; debug builds assert it
    /// against a shadow full recompute.
    ///
    /// Returns [`DeltaEval::value`]` = None` when nothing differed: the
    /// child is bitwise the parent, and the parent's score carries over.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or out-of-range candidate indices.
    pub fn eval_delta(
        &self,
        child: &[f64],
        parent: &[f64],
        parent_blocks: &[Block],
        child_blocks: &mut [Block],
        crossover: Option<(usize, usize)>,
        mutated: Option<usize>,
    ) -> DeltaEval {
        assert_eq!(child.len(), self.dimension());
        assert_eq!(parent.len(), self.dimension());
        child_blocks.copy_from_slice(parent_blocks);
        let mut blocks_recomputed = 0u32;
        let mut genes_recomputed = 0u32;
        let x_blocks = crossover.map(|(lo, hi)| {
            assert!(lo <= hi && hi < self.dimension());
            (lo / BLOCK_LEN, hi / BLOCK_LEN)
        });
        let mut patch = |b: usize, out: &mut [Block]| {
            if self.block_differs(b, child, parent) {
                out[b] = self.eval_block(b, child);
                blocks_recomputed += 1;
                genes_recomputed += self.block_range(b).len() as u32;
            }
        };
        if let Some((b0, b1)) = x_blocks {
            for b in b0..=b1 {
                patch(b, child_blocks);
            }
        }
        if let Some(g) = mutated {
            assert!(g < self.dimension());
            let bm = g / BLOCK_LEN;
            if x_blocks.is_none_or(|(b0, b1)| bm < b0 || bm > b1) {
                patch(bm, child_blocks);
            }
        }
        let value = if blocks_recomputed > 0 {
            Some(self.combine(child_blocks))
        } else {
            None
        };
        // Shadow full recompute: the patched partials must reproduce a
        // from-scratch evaluation bit for bit — this also catches a child
        // that differs from its parent *outside* the declared candidate
        // ranges (a provenance bug upstream).
        #[cfg(debug_assertions)]
        {
            let shadow = self.eval_iter(child.iter().copied());
            let got = self.combine(child_blocks);
            debug_assert!(
                bits_eq(got, shadow),
                "delta evaluation diverged from full recompute: {got:?} vs {shadow:?}"
            );
            debug_assert!(
                value.is_some()
                    || child
                        .iter()
                        .zip(parent)
                        .all(|(c, p)| c.to_bits() == p.to_bits()),
                "carried child differs from its parent outside the candidate ranges"
            );
        }
        DeltaEval {
            value,
            blocks_recomputed,
            genes_recomputed,
        }
    }

    /// Evaluates every genome of `genomes` into `out`, serially, in one
    /// contiguous pass over the SoA buffer.
    ///
    /// # Panics
    ///
    /// Panics when the population's gene count differs from the cache
    /// dimension or `out` is not one slot per individual.
    pub fn objective_batch(&self, genomes: &FlatPopulation, out: &mut [ObjectiveValue]) {
        assert_eq!(genomes.genes(), self.dimension());
        assert_eq!(out.len(), genomes.individuals());
        for (genome, slot) in genomes.genomes().zip(out.iter_mut()) {
            *slot = self.eval_iter(genome.iter().copied());
        }
    }

    /// [`ObjectiveCache::objective_batch`] fanned out over a worker pool.
    /// Bit-identical to the serial pass for any thread count: each slot is
    /// a pure function of its own genome.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ObjectiveCache::objective_batch`].
    pub fn objective_batch_with_pool(
        &self,
        pool: &WorkerPool,
        genomes: &FlatPopulation,
        out: &mut [ObjectiveValue],
    ) {
        assert_eq!(genomes.genes(), self.dimension());
        assert_eq!(out.len(), genomes.individuals());
        let slots = DisjointSlice::new(out);
        let slots = &slots;
        pool.for_each(genomes.individuals(), |i| {
            let value = self.eval_iter(genomes.genome(i).iter().copied());
            // SAFETY: the pool claims each index exactly once, so this
            // thread is the sole writer of slot `i`.
            unsafe { slots.write(i, value) };
        });
    }
}

/// Bitwise equality of two objective values (all four fields).
fn bits_eq(a: ObjectiveValue, b: ObjectiveValue) -> bool {
    a.p_ms.to_bits() == b.p_ms.to_bits()
        && a.max_u_lc_lo.to_bits() == b.max_u_lc_lo.to_bits()
        && a.u_hc_lo.to_bits() == b.u_hc_lo.to_bits()
        && a.fitness.to_bits() == b.fitness.to_bits()
}

/// Runs the GA with the incremental delta-fitness backend: children are
/// evaluated by patching their parent's block partials instead of a full
/// objective pass, and bitwise-unchanged children carry the parent's
/// score outright. Results are bit-identical to
/// [`optimize`](crate::ga::optimize) over the plain objective closure —
/// the backend changes evaluation *cost*, never values.
///
/// Returns the GA result plus the evaluation statistics (full vs delta vs
/// carried counts).
///
/// # Errors
///
/// Same conditions as [`optimize`](crate::ga::optimize), plus
/// [`OptError::DimensionMismatch`] when `bounds` does not match the cache
/// dimension.
pub fn optimize_incremental(
    cache: &ObjectiveCache,
    bounds: &[GeneBounds],
    cfg: &GaConfig,
) -> Result<(GaResult, EvalStats), OptError> {
    let pool = WorkerPool::with_budget(ThreadBudget::explicit(cfg.threads));
    optimize_incremental_with_pool(cache, bounds, cfg, &pool)
}

/// [`optimize_incremental`] on a caller-supplied pool (`cfg.threads` is
/// ignored; the pool decides).
///
/// # Errors
///
/// Same conditions as [`optimize_incremental`].
pub fn optimize_incremental_with_pool(
    cache: &ObjectiveCache,
    bounds: &[GeneBounds],
    cfg: &GaConfig,
    pool: &WorkerPool,
) -> Result<(GaResult, EvalStats), OptError> {
    if !bounds.is_empty() && bounds.len() != cache.dimension() {
        return Err(OptError::DimensionMismatch {
            expected: cache.dimension(),
            got: bounds.len(),
        });
    }
    let mut backend = IncrementalBackend::new(cache, cfg.serial_eval_threshold);
    run_ga(bounds, cfg, pool, &mut backend)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(acet: f64, sigma: f64, wcet_pes: f64, period: f64) -> HcTaskParams {
        HcTaskParams {
            id: mc_task::TaskId::new(0),
            acet,
            sigma,
            wcet_pes,
            period,
        }
    }

    fn cache(n: usize) -> ObjectiveCache {
        let tasks: Vec<HcTaskParams> = (0..n)
            .map(|i| {
                let period = 1.0e8 + (i as f64) * 1.0e6;
                task(3.0e6, 0.5e6 + (i as f64) * 1.0e4, 3.0e7, period)
            })
            .collect();
        let u_hc_hi: f64 = tasks.iter().map(HcTaskParams::u_hi).sum();
        ObjectiveCache::new(&tasks, u_hc_hi)
    }

    #[test]
    fn blocked_full_matches_reference_across_dimensions() {
        // The bit-identity claim, checked across the single-block and
        // multi-block regimes (including exact multiples of 16).
        for n in [1usize, 2, 6, 15, 16, 17, 31, 32, 33, 40] {
            let c = cache(n);
            let genome: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % 9.0).collect();
            let mut blocks = vec![Block::default(); c.n_blocks()];
            let full = c.eval_full(&genome, &mut blocks);
            let reference = c.eval_iter(genome.iter().copied());
            assert!(bits_eq(full, reference), "dim {n}");
            assert!(bits_eq(c.combine(&blocks), reference), "dim {n}");
        }
    }

    #[test]
    fn infeasible_gene_matches_reference_partial_sum() {
        for n in [6usize, 20, 35] {
            let c = cache(n);
            for bad in [0, n / 2, n - 1] {
                let mut genome: Vec<f64> = vec![1.0; n];
                genome[bad] = -1.0; // fails the n ≥ 0 check
                let mut blocks = vec![Block::default(); c.n_blocks()];
                let full = c.eval_full(&genome, &mut blocks);
                let reference = c.eval_iter(genome.iter().copied());
                assert!(bits_eq(full, reference), "dim {n} bad {bad}");
                assert_eq!(full.fitness, 0.0);
                assert_eq!(full.p_ms, 1.0);
            }
        }
    }

    #[test]
    fn delta_patches_are_bit_identical_to_full() {
        let n = 40;
        let c = cache(n);
        let parent: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.1).collect();
        let mut parent_blocks = vec![Block::default(); c.n_blocks()];
        c.eval_full(&parent, &mut parent_blocks);
        let mut child_blocks = vec![Block::default(); c.n_blocks()];
        // A crossover span crossing a block boundary plus a far mutation.
        let mut child = parent.clone();
        for (g, x) in child.iter_mut().enumerate().take(19).skip(14) {
            *x = 5.0 + g as f64 * 0.01;
        }
        child[39] = 0.25;
        let d = c.eval_delta(
            &child,
            &parent,
            &parent_blocks,
            &mut child_blocks,
            Some((14, 18)),
            Some(39),
        );
        let value = d.value.expect("the child differs");
        assert!(bits_eq(value, c.eval_iter(child.iter().copied())));
        assert_eq!(d.blocks_recomputed, 3); // blocks 0, 1 and 2
                                            // Re-fold again from the child's own blocks: partials round-trip.
        assert!(bits_eq(c.combine(&child_blocks), value));
    }

    #[test]
    fn delta_detects_unchanged_children() {
        let n = 20;
        let c = cache(n);
        let parent: Vec<f64> = vec![2.0; n];
        let mut parent_blocks = vec![Block::default(); c.n_blocks()];
        let parent_value = c.eval_full(&parent, &mut parent_blocks);
        let mut child_blocks = vec![Block::default(); c.n_blocks()];
        // Crossover with an identical mate + mutation resampling the same
        // value: bitwise no-op, must be detected as carried.
        let d = c.eval_delta(
            &parent.clone(),
            &parent,
            &parent_blocks,
            &mut child_blocks,
            Some((3, 17)),
            Some(5),
        );
        assert_eq!(d.value, None);
        assert_eq!(d.blocks_recomputed, 0);
        assert!(bits_eq(c.combine(&child_blocks), parent_value));
    }

    #[test]
    fn delta_repairs_infeasibility_breaks() {
        // Parent is infeasible in block 0; the delta makes it feasible,
        // which forces the later blocks' stored partials to matter.
        let n = 35;
        let c = cache(n);
        let mut parent: Vec<f64> = vec![1.5; n];
        parent[2] = -3.0;
        let mut parent_blocks = vec![Block::default(); c.n_blocks()];
        let pv = c.eval_full(&parent, &mut parent_blocks);
        assert_eq!(pv.fitness, 0.0);
        let mut child = parent.clone();
        child[2] = 1.5;
        let mut child_blocks = vec![Block::default(); c.n_blocks()];
        let d = c.eval_delta(
            &child,
            &parent,
            &parent_blocks,
            &mut child_blocks,
            None,
            Some(2),
        );
        let value = d.value.expect("the child differs");
        // Feasibility is repaired (the later blocks' stored products were
        // consumed), even though 35 tasks at n = 1.5 overload EDF-VD and
        // keep the fitness itself at zero.
        assert!(value.p_ms < 1.0);
        assert!(bits_eq(value, c.eval_iter(child.iter().copied())));
    }

    #[test]
    fn batch_matches_scalar_and_threads() {
        let n = 33;
        let c = cache(n);
        let individuals = 37;
        let mut pop = FlatPopulation::zeroed(individuals, n);
        for i in 0..individuals {
            for (g, x) in pop.genome_mut(i).iter_mut().enumerate() {
                *x = ((i * 31 + g * 7) % 90) as f64 * 0.1;
            }
        }
        let zero = ObjectiveValue {
            p_ms: 0.0,
            max_u_lc_lo: 0.0,
            u_hc_lo: 0.0,
            fitness: 0.0,
        };
        let mut serial = vec![zero; individuals];
        c.objective_batch(&pop, &mut serial);
        for (i, v) in serial.iter().enumerate() {
            assert!(bits_eq(*v, c.eval(pop.genome(i))), "row {i}");
        }
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![zero; individuals];
            c.objective_batch_with_pool(&pool, &pop, &mut out);
            for (a, b) in serial.iter().zip(&out) {
                assert!(bits_eq(*a, *b), "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn flat_population_layout() {
        let mut p = FlatPopulation::zeroed(3, 4);
        assert_eq!(p.individuals(), 3);
        assert_eq!(p.genes(), 4);
        p.genome_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.genome(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.genome(0), &[0.0; 4]);
        assert_eq!(p.genomes().count(), 3);
        assert_eq!(p.as_slice().len(), 12);
    }
}
