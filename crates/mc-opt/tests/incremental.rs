//! The incremental evaluation engine's external contract: delta-fitness,
//! batch SoA evaluation, the memo cache, the auto-serial fallback and the
//! thread count are all *pure performance knobs* — no combination may
//! change one bit of any objective value or GA result. These tests drive
//! the engine the way the GA does (random variation sequences over random
//! task sets) and compare every path against a from-scratch evaluation.

use mc_opt::ga::{optimize, optimize_with_stats, GaConfig, GeneBounds};
use mc_opt::incremental::{optimize_incremental, Block, FlatPopulation, ObjectiveCache};
use mc_opt::problem::HcTaskParams;
use mc_opt::ObjectiveValue;
use mc_par::WorkerPool;
use mc_task::TaskId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bits_eq(a: ObjectiveValue, b: ObjectiveValue) -> bool {
    a.p_ms.to_bits() == b.p_ms.to_bits()
        && a.max_u_lc_lo.to_bits() == b.max_u_lc_lo.to_bits()
        && a.u_hc_lo.to_bits() == b.u_hc_lo.to_bits()
        && a.fitness.to_bits() == b.fitness.to_bits()
}

/// A random but plausible HC task set: periods 50–900 ms, WCET a few
/// percent of the period, occasional σ = 0 tasks (the deterministic
/// special case of Eq. 9).
fn random_cache(rng: &mut StdRng, n: usize) -> ObjectiveCache {
    let tasks: Vec<HcTaskParams> = (0..n)
        .map(|i| {
            let period = rng.random_range(5.0e7..9.0e8);
            let wcet_pes = period * rng.random_range(0.01..0.2);
            let acet = wcet_pes * rng.random_range(0.05..0.5);
            let sigma = if rng.random::<f64>() < 0.1 {
                0.0
            } else {
                acet * rng.random_range(0.05..0.4)
            };
            HcTaskParams {
                id: TaskId::new(i as u32),
                acet,
                sigma,
                wcet_pes,
                period,
            }
        })
        .collect();
    let u_hc_hi = tasks.iter().map(HcTaskParams::u_hi).sum();
    ObjectiveCache::new(&tasks, u_hc_hi)
}

/// Random GA-shaped variation: an optional crossover span and an optional
/// single mutated gene, with new values drawn from a range that straddles
/// the feasibility threshold so infeasible children occur regularly.
fn vary(rng: &mut StdRng, parent: &[f64]) -> (Vec<f64>, Option<(usize, usize)>, Option<usize>) {
    let n = parent.len();
    let mut child = parent.to_vec();
    let crossover = if rng.random::<f64>() < 0.8 {
        let (mut lo, mut hi) = (rng.random_range(0..n), rng.random_range(0..n));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        for x in &mut child[lo..=hi] {
            // Sometimes the "mate" carries the identical gene value.
            if rng.random::<f64>() < 0.8 {
                *x = rng.random_range(-1.0..60.0);
            }
        }
        Some((lo, hi))
    } else {
        None
    };
    let mutated = if rng.random::<f64>() < 0.5 {
        let g = rng.random_range(0..n);
        if rng.random::<f64>() < 0.8 {
            child[g] = rng.random_range(-1.0..60.0);
        }
        Some(g)
    } else {
        None
    };
    (child, crossover, mutated)
}

#[test]
fn random_mutation_sequences_are_bit_identical_to_full_recomputation() {
    // The satellite property: chains of GA-shaped variations, delta-
    // evaluated step after step (each child becomes the next parent,
    // inheriting *patched* partials, so errors would compound), always
    // match a from-scratch evaluation bitwise — across the single-block
    // regime, block-boundary dimensions and many-block genomes.
    for dim in [3usize, 16, 17, 40, 100] {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + dim as u64);
        let cache = random_cache(&mut rng, dim);
        let nb = cache.n_blocks();
        let mut parent: Vec<f64> = (0..dim).map(|_| rng.random_range(0.0..30.0)).collect();
        let mut parent_blocks = vec![Block::default(); nb];
        let mut parent_value = cache.eval_full(&parent, &mut parent_blocks);
        let mut child_blocks = vec![Block::default(); nb];
        let mut carried = 0u32;
        for step in 0..300 {
            let (child, crossover, mutated) = vary(&mut rng, &parent);
            if crossover.is_none() && mutated.is_none() {
                continue;
            }
            let d = cache.eval_delta(
                &child,
                &parent,
                &parent_blocks,
                &mut child_blocks,
                crossover,
                mutated,
            );
            let reference = cache.eval(&child);
            let value = match d.value {
                Some(v) => v,
                None => {
                    carried += 1;
                    parent_value
                }
            };
            assert!(
                bits_eq(value, reference),
                "dim {dim} step {step}: delta {value:?} vs full {reference:?}"
            );
            // The patched partials are a valid basis for the next delta.
            assert!(bits_eq(cache.combine(&child_blocks), reference));
            parent = child;
            std::mem::swap(&mut parent_blocks, &mut child_blocks);
            parent_value = value;
        }
        // The variation scheme produces bitwise-identical children often
        // enough that the carried path is genuinely exercised.
        assert!(carried > 0, "dim {dim}: no carried children in 300 steps");
    }
}

#[test]
fn batch_objective_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(7);
    for dim in [6usize, 33, 64] {
        let cache = random_cache(&mut rng, dim);
        let individuals = 53;
        let mut pop = FlatPopulation::zeroed(individuals, dim);
        for i in 0..individuals {
            for x in pop.genome_mut(i) {
                *x = rng.random_range(-2.0..60.0);
            }
        }
        let zero = ObjectiveValue {
            p_ms: 0.0,
            max_u_lc_lo: 0.0,
            u_hc_lo: 0.0,
            fitness: 0.0,
        };
        let mut serial = vec![zero; individuals];
        cache.objective_batch(&pop, &mut serial);
        for (i, v) in serial.iter().enumerate() {
            assert!(bits_eq(*v, cache.eval(pop.genome(i))), "dim {dim} row {i}");
        }
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![zero; individuals];
            cache.objective_batch_with_pool(&pool, &pop, &mut out);
            assert!(
                serial.iter().zip(&out).all(|(a, b)| bits_eq(*a, *b)),
                "dim {dim}, {threads} threads diverged"
            );
        }
    }
}

#[test]
fn incremental_ga_matches_closure_ga_for_every_knob_combination() {
    // The tentpole equality: the incremental backend, the memoised
    // closure backend and the memo-ablated closure backend must return
    // byte-identical GaResults for any thread count and any serial-
    // fallback threshold. threshold 0 forces pool dispatch even for this
    // small problem, so the parallel delta path is genuinely exercised.
    let mut rng = StdRng::seed_from_u64(42);
    for dim in [6usize, 24] {
        let cache = random_cache(&mut rng, dim);
        let bounds = vec![GeneBounds::new(0.0, 30.0).unwrap(); dim];
        let base = GaConfig {
            population_size: 32,
            generations: 25,
            threads: 1,
            ..GaConfig::default()
        };
        let closure = |c: &[f64]| cache.eval(c).fitness;
        let reference = optimize(&bounds, closure, &base).unwrap();
        for threads in [1usize, 2, 4] {
            for serial_eval_threshold in [0usize, 8192] {
                for disable_memo in [false, true] {
                    let cfg = GaConfig {
                        threads,
                        serial_eval_threshold,
                        disable_memo,
                        ..base
                    };
                    let ctx = format!(
                        "dim {dim} threads {threads} threshold {serial_eval_threshold} \
                         memo off {disable_memo}"
                    );
                    let r = optimize(&bounds, closure, &cfg).unwrap();
                    assert_eq!(r, reference, "closure path diverged: {ctx}");
                    let (ri, stats) = optimize_incremental(&cache, &bounds, &cfg).unwrap();
                    assert_eq!(ri, reference, "incremental path diverged: {ctx}");
                    // Every considered slot was served exactly one way.
                    assert_eq!(
                        stats.considered,
                        stats.full_evals + stats.delta_evals + stats.carried,
                        "{ctx}"
                    );
                    assert_eq!(stats.memo_hits, 0, "{ctx}");
                    // Gen 0 is the only full-evaluation generation.
                    assert_eq!(stats.full_evals, 32, "{ctx}");
                    assert!(stats.delta_evals > 0, "{ctx}");
                    // The whole point: most gene-terms are never re-folded.
                    assert!(stats.genes_evaluated < stats.genes_total, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn incremental_stats_count_the_actual_work() {
    let mut rng = StdRng::seed_from_u64(9);
    let dim = 48;
    let cache = random_cache(&mut rng, dim);
    let bounds = vec![GeneBounds::new(0.0, 30.0).unwrap(); dim];
    let cfg = GaConfig {
        population_size: 40,
        generations: 40,
        threads: 1,
        ..GaConfig::default()
    };
    let (_, stats) = optimize_incremental(&cache, &bounds, &cfg).unwrap();
    assert_eq!(stats.considered, 40 + 40 * (40 - 2));
    assert_eq!(stats.genes_total, stats.considered * dim as u64);
    // Full evaluations fold whole genomes; deltas at most the candidate
    // blocks (≤ 3 blocks of 16 for a span + a far mutation — but never
    // more than the genome).
    assert!(stats.genes_evaluated >= stats.full_evals * dim as u64);
    assert!(
        stats.genes_evaluated <= stats.full_evals * dim as u64 + stats.delta_evals * dim as u64
    );
    // A uniform crossover span averages dim/3 genes but block granularity
    // rounds it up to whole blocks, so on a 3-block genome the expected
    // delta re-fold is ≈ 60% of the genome. Assert it stays clearly below
    // a full re-fold; the ratio shrinks as block count grows.
    let delta_genes = stats.genes_evaluated - stats.full_evals * dim as u64;
    assert!(
        delta_genes * 4 < stats.delta_evals * dim as u64 * 3,
        "average delta re-folds {} of {dim} genes",
        delta_genes as f64 / stats.delta_evals as f64
    );
}

#[test]
fn closure_stats_account_memo_and_dups() {
    let bounds = vec![GeneBounds::new(0.0, 5.0).unwrap(); 4];
    let cfg = GaConfig {
        population_size: 24,
        generations: 20,
        threads: 1,
        ..GaConfig::default()
    };
    let f = |c: &[f64]| c.iter().map(|x| x * (4.0 - x)).sum::<f64>();
    let (_, stats) = optimize_with_stats(&bounds, f, &cfg).unwrap();
    assert_eq!(
        stats.considered,
        stats.full_evals + stats.memo_hits + stats.batch_dups
    );
    assert!(stats.memo_hits > 0);
    assert_eq!(stats.delta_evals, 0);
    assert_eq!(stats.carried, 0);
}
