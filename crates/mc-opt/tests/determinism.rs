//! The parallel hot path's contract: thread count is a pure performance
//! knob. `GaResult`s, `Solution`s, and multistart SA winners must be
//! bit-identical for any thread count, and the fitness memo cache must
//! never change a result — only skip redundant evaluations.

use mc_opt::ga::{optimize, optimize_with_pool, GaConfig, GaResult, GeneBounds};
use mc_opt::{ProblemConfig, WcetProblem};
use mc_par::WorkerPool;
use mc_task::time::Duration;
use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};
use std::sync::atomic::{AtomicUsize, Ordering};

fn rastrigin_like(c: &[f64]) -> f64 {
    // Multi-modal, so different trajectories would visibly diverge.
    -c.iter()
        .map(|x| x * x - 10.0 * (x * 3.0).cos() + 10.0)
        .sum::<f64>()
}

fn sample_problem() -> WcetProblem {
    let mk = |id: u32, acet: f64, sigma: f64, wcet_ms: u64| {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(wcet_ms))
            .c_hi(Duration::from_millis(wcet_ms))
            .profile(ExecutionProfile::new(acet, sigma, wcet_ms as f64 * 1e6).unwrap())
            .build()
            .unwrap()
    };
    let ts = TaskSet::from_tasks(vec![
        mk(0, 3.0e6, 0.5e6, 30),
        mk(1, 4.0e6, 1.0e6, 40),
        mk(2, 5.0e6, 2.0e6, 25),
    ])
    .unwrap();
    WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap()
}

#[test]
fn ga_result_is_bit_identical_across_thread_counts() {
    let bounds = vec![GeneBounds::new(-5.12, 5.12).unwrap(); 6];
    // {1, 2, max}: serial, smallest parallel pool, all cores.
    let runs: Vec<GaResult> = [1usize, 2, 0]
        .iter()
        .map(|&threads| {
            let cfg = GaConfig {
                population_size: 40,
                generations: 30,
                threads,
                ..GaConfig::default()
            };
            optimize(&bounds, rastrigin_like, &cfg).unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

#[test]
fn solve_ga_is_bit_identical_across_thread_counts() {
    let problem = sample_problem();
    let solutions: Vec<_> = [1usize, 2, 0]
        .iter()
        .map(|&threads| {
            let cfg = GaConfig {
                threads,
                ..GaConfig::default()
            };
            problem.solve_ga(&cfg).unwrap()
        })
        .collect();
    assert_eq!(solutions[0], solutions[1]);
    assert_eq!(solutions[0], solutions[2]);
}

#[test]
fn caller_supplied_pool_matches_config_threads() {
    let bounds = vec![GeneBounds::new(-5.12, 5.12).unwrap(); 4];
    let cfg = GaConfig {
        population_size: 32,
        generations: 20,
        threads: 2,
        ..GaConfig::default()
    };
    let own_pool = optimize(&bounds, rastrigin_like, &cfg).unwrap();
    let pool = WorkerPool::new(2);
    let shared = optimize_with_pool(&bounds, rastrigin_like, &cfg, &pool).unwrap();
    assert_eq!(own_pool, shared);
    // And the same shared pool is reusable for a second run.
    let again = optimize_with_pool(&bounds, rastrigin_like, &cfg, &pool).unwrap();
    assert_eq!(shared, again);
}

#[test]
fn memo_cache_skips_elites_but_never_changes_results() {
    let bounds = vec![GeneBounds::new(-5.12, 5.12).unwrap(); 5];
    let cfg = GaConfig {
        population_size: 30,
        generations: 25,
        threads: 1,
        ..GaConfig::default()
    };
    let evals = AtomicUsize::new(0);
    let counted = |c: &[f64]| {
        evals.fetch_add(1, Ordering::Relaxed);
        rastrigin_like(c)
    };
    let result = optimize(&bounds, counted, &cfg).unwrap();
    let total = evals.load(Ordering::Relaxed);

    // A memo-less GA evaluates every individual of every generation:
    // pop × (generations + 1). Elites alone (carried scores, default
    // elitism = 2) must already push the count below that; converged
    // duplicate genomes only widen the gap.
    let nominal = cfg.population_size * (cfg.generations + 1);
    let elite_savings = 2 * cfg.generations;
    assert!(
        total <= nominal - elite_savings,
        "memo cache saved nothing: {total} evaluations vs {nominal} nominal"
    );

    // Cached values must agree with a fresh evaluation bit-for-bit.
    assert_eq!(result.best_fitness, rastrigin_like(&result.best));

    // And memoization must not alter the outcome vs. the same
    // configuration (the memo is always on — cross-check thread counts
    // and a duplicate-heavy fitness instead).
    let dup_heavy = |c: &[f64]| (c[0] * 8.0).round() / 8.0; // plateaus → duplicates
    let a = optimize(&bounds, dup_heavy, &cfg).unwrap();
    let b = optimize(&bounds, dup_heavy, &GaConfig { threads: 2, ..cfg }).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.best_fitness, dup_heavy(&a.best));
}

#[test]
fn duplicate_genomes_are_evaluated_once() {
    // A single-gene problem with zero-width bounds: every chromosome is
    // identical, so the memo collapses all evaluations into one.
    let bounds = [GeneBounds::new(3.0, 3.0).unwrap()];
    let cfg = GaConfig {
        population_size: 16,
        generations: 10,
        threads: 1,
        ..GaConfig::default()
    };
    let evals = AtomicUsize::new(0);
    let counted = |c: &[f64]| {
        evals.fetch_add(1, Ordering::Relaxed);
        -c[0]
    };
    let result = optimize(&bounds, counted, &cfg).unwrap();
    assert_eq!(evals.load(Ordering::Relaxed), 1);
    assert_eq!(result.best, vec![3.0]);
}
