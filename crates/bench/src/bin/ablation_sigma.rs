//! Ablation — population σ (the paper's Eq. 4, divide by m) vs the
//! Bessel-corrected sample σ (divide by m−1), and sensitivity of the
//! designed budgets to the trace length m (DESIGN.md §5).
//!
//! Run: `cargo run -p chebymc-bench --release --bin ablation_sigma`

use chebymc_bench::{pct, Table};
use mc_exec::benchmarks;
use mc_stats::chebyshev::one_sided_bound;
use mc_stats::summary::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation — σ estimator and trace length (benchmark: corner; n = 3)\n");
    let bench = benchmarks::corner()?;
    let n = 3.0;
    let mut table = Table::new([
        "m (samples)",
        "ACET",
        "pop σ",
        "sample σ",
        "C_LO(pop)",
        "C_LO(sample)",
        "Δ C_LO %",
        "meas overrun % @C_LO(pop)",
    ]);
    // The reference trace measures the "true" overrun rate of any level.
    let reference = bench.sample_trace(200_000, 999)?;
    for m in [10usize, 30, 100, 1_000, 20_000] {
        let trace = bench.sample_trace(m, 4)?;
        let s = Summary::from_samples(trace.samples())?;
        let c_pop = s.mean() + n * s.std_dev();
        let c_sample = s.mean() + n * s.sample_std_dev();
        let measured = reference.overrun_rate(c_pop)?.rate();
        table.row([
            format!("{m}"),
            format!("{:.0}", s.mean()),
            format!("{:.0}", s.std_dev()),
            format!("{:.0}", s.sample_std_dev()),
            format!("{c_pop:.0}"),
            format!("{c_sample:.0}"),
            format!("{:.2}", (c_sample / c_pop - 1.0) * 100.0),
            pct(measured),
        ]);
    }
    table.emit("ablation_sigma");
    println!(
        "Chebyshev bound at n = 3: {}%.\n\
         Reading the table: the estimator choice moves C_LO by ≈ 100/(2m) % —\n\
         irrelevant at the paper's m = 20000 (0.0025 %) and still minor at\n\
         m = 30; short traces are risky through estimation noise in ACET/σ\n\
         themselves (watch the measured-overrun column wobble), not through\n\
         the m vs m−1 convention.",
        pct(one_sided_bound(n))
    );
    Ok(())
}
