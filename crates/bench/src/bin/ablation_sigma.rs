//! Ablation — population σ (the paper's Eq. 4, divide by m) vs the
//! Bessel-corrected sample σ (divide by m−1), and sensitivity of the
//! designed budgets to the trace length m (DESIGN.md §5).
//!
//! A thin wrapper over the `ablation_sigma` campaign in `mc_exp::catalog`
//! (the definition `chebymc exp run ablation_sigma` executes), run against
//! an in-memory store with the legacy trace seeds, so the rows match the
//! pre-campaign binary exactly.
//!
//! Run: `cargo run -p chebymc-bench --release --bin ablation_sigma`

use chebymc_bench::{pct, trace_from_env, Table};
use mc_exp::catalog::{self, CatalogOptions};
use mc_exp::{aggregate, run_campaign, RunConfig, Store};
use mc_stats::chebyshev::one_sided_bound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = trace_from_env();
    println!("Ablation — σ estimator and trace length (benchmark: corner; n = 3)\n");
    let campaign = catalog::build("ablation_sigma", &CatalogOptions::default())?;
    let mut store = Store::in_memory(&campaign.spec);
    run_campaign(
        &campaign.spec,
        campaign.runner.as_ref(),
        &mut store,
        &RunConfig::default(),
    )?;
    let aggs = aggregate(&campaign.spec, store.records())?;

    let mut table = Table::new([
        "m (samples)",
        "ACET",
        "pop σ",
        "sample σ",
        "C_LO(pop)",
        "C_LO(sample)",
        "Δ C_LO %",
        "meas overrun % @C_LO(pop)",
    ]);
    for a in &aggs {
        let get = |name: &str| a.mean(name).expect("ablation records carry every column");
        let m = a
            .params
            .iter()
            .find(|p| p.name == "m")
            .expect("ablation points carry m")
            .value;
        table.row([
            format!("{}", m as usize),
            format!("{:.0}", get("acet")),
            format!("{:.0}", get("pop_sigma")),
            format!("{:.0}", get("sample_sigma")),
            format!("{:.0}", get("c_lo_pop")),
            format!("{:.0}", get("c_lo_sample")),
            format!("{:.2}", get("delta_pct")),
            pct(get("measured_overrun")),
        ]);
    }
    table.emit("ablation_sigma");
    println!(
        "Chebyshev bound at n = 3: {}%.\n\
         Reading the table: the estimator choice moves C_LO by ≈ 100/(2m) % —\n\
         irrelevant at the paper's m = 20000 (0.0025 %) and still minor at\n\
         m = 30; short traces are risky through estimation noise in ACET/σ\n\
         themselves (watch the measured-overrun column wobble), not through\n\
         the m vs m−1 convention.",
        pct(one_sided_bound(3.0))
    );
    Ok(())
}
