//! GA convergence diagnostics — how quickly the paper's optimiser settles
//! on the Eq. 13 landscape, and how population size trades generations for
//! evaluations. Complements `ablation_optimizers` (final quality) with the
//! trajectory view.
//!
//! Run: `cargo run -p chebymc-bench --release --bin convergence`

use chebymc_bench::Table;
use mc_opt::ga::optimize;
use mc_opt::{GaConfig, ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let ts = generate_hc_taskset(0.8, &GeneratorConfig::default(), &mut rng)?;
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default())?;
    println!(
        "GA convergence on one U_HC^HI = 0.8 task set ({} HC tasks)\n",
        problem.dimension()
    );

    let mut table = Table::new(["generation", "best", "mean", "best/final %"]);
    let cfg = GaConfig {
        generations: 80,
        ..GaConfig::default()
    };
    let bounds = problem.bounds()?;
    let result = optimize(&bounds, |c| problem.objective(c).fitness, &cfg)?;
    let final_best = result.best_fitness;
    for g in result
        .history
        .iter()
        .filter(|g| g.generation % 5 == 0 || g.generation == cfg.generations - 1)
    {
        table.row([
            format!("{}", g.generation),
            format!("{:.4}", g.best),
            format!("{:.4}", g.mean),
            format!("{:.1}", g.best / final_best * 100.0),
        ]);
    }
    table.emit("convergence");

    println!("population size vs generations to reach 99 % of the final objective:\n");
    let mut sweep = Table::new(["population", "gens to 99%", "evaluations to 99%"]);
    for &pop in &[16usize, 32, 64, 128, 256] {
        let cfg = GaConfig {
            population_size: pop,
            generations: 120,
            ..GaConfig::default()
        };
        let r = optimize(&bounds, |c| problem.objective(c).fitness, &cfg)?;
        let target = 0.99 * r.best_fitness;
        let gen99 = r
            .history
            .iter()
            .find(|g| g.best >= target)
            .map(|g| g.generation)
            .unwrap_or(cfg.generations);
        sweep.row([
            format!("{pop}"),
            format!("{gen99}"),
            format!("{}", gen99 * pop),
        ]);
    }
    sweep.emit("convergence_population");
    println!(
        "Reading the tables: the landscape is benign — the default 64x80\n\
         configuration converges within the first few dozen generations, and\n\
         larger populations only shift work from generations to evaluations."
    );
    Ok(())
}
