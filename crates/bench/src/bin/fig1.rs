//! Fig. 1 — execution-time distribution of a real-time task, showing the
//! gap between the ACET cluster and the pessimistic WCET.
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig1 [benchmark]`
//! (default benchmark: `corner`).

use chebymc_bench::samples_per_benchmark;
use mc_exec::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "corner".into());
    let bench = benchmarks::by_name(&name)?;
    let samples = samples_per_benchmark();
    let trace = bench.sample_trace(samples, 1)?;
    let summary = trace.summary()?;

    println!("Fig. 1 — execution-time distribution of `{name}` ({samples} instances)\n");
    // Bins cover the sampled range; the WCET sits far off to the right.
    let hist = trace.histogram(40)?;
    print!("{}", hist.to_ascii(60));
    println!();
    println!("ACET      = {:>14.0} cycles", summary.mean());
    println!("sigma     = {:>14.0} cycles", summary.std_dev());
    println!("max seen  = {:>14.0} cycles", summary.max());
    println!(
        "WCET_pes  = {:>14.0} cycles (static analysis)",
        bench.spec().wcet_pes
    );
    println!(
        "gap       = {:>13.1}x  (WCET_pes / ACET — the paper's motivation)",
        bench.spec().wcet_pes / summary.mean()
    );
    println!("\nNote how the mass concentrates within a few sigma of the ACET while the");
    println!(
        "analysed WCET lies {:.0} sigma above it.",
        (bench.spec().wcet_pes - summary.mean()) / summary.std_dev()
    );
    Ok(())
}
