//! Fig. 5 — the combined objective `(1 − P_MS) · max(U_LC^LO)` (Eq. 13) of
//! every policy as `U_HC^HI` varies: the single-number comparison in which
//! the proposed scheme dominates.
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig5`

use chebymc_bench::{task_sets_per_point, Table};
use chebymc_core::pipeline::{evaluate_policy_over_utilization, BatchConfig};
use chebymc_core::policy::{paper_lambda_baselines, WcetPolicy};
use mc_opt::{GaConfig, ProblemConfig};
use mc_task::generate::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = BatchConfig {
        task_sets: task_sets_per_point(),
        seed: 5,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let u_values: Vec<f64> = (4..=9).map(|i| i as f64 / 10.0).collect();
    println!(
        "Fig. 5 — Eq. 13 objective by varying U_HC^HI ({} task sets per point)\n",
        batch.task_sets
    );

    let mut policies: Vec<WcetPolicy> = vec![WcetPolicy::ChebyshevGa {
        ga: GaConfig {
            population_size: 48,
            generations: 40,
            ..GaConfig::default()
        },
        problem: ProblemConfig::default(),
    }];
    policies.extend(paper_lambda_baselines());
    policies.push(WcetPolicy::Acet);

    let mut table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(policies.iter().map(|p| p.name()));
        h
    });
    let mut per_policy = Vec::new();
    for policy in &policies {
        per_policy.push(evaluate_policy_over_utilization(&u_values, policy, &batch)?);
    }
    let mut improvements = Vec::new();
    for (ui, &u) in u_values.iter().enumerate() {
        let mut row = vec![format!("{u:.1}")];
        for points in &per_policy {
            row.push(format!("{:.4}", points[ui].mean_objective));
        }
        table.row(row);
        // Improvement of the scheme over the best lambda baseline.
        let ours = per_policy[0][ui].mean_objective;
        let best_baseline = per_policy[1..]
            .iter()
            .map(|p| p[ui].mean_objective)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_baseline > 0.0 {
            improvements.push((u, (ours / best_baseline - 1.0) * 100.0));
        }
    }
    table.emit("fig5");
    println!("objective improvement of the scheme over the best baseline per point:");
    for (u, imp) in &improvements {
        println!("  U_HC^HI = {u:.1}: {imp:+.1} %");
    }
    println!(
        "\nShape to compare with the paper: the scheme's curve dominates every\n\
         policy at every utilisation (the paper reports utilisation improvements\n\
         of up to 85.29 % with P_MS bounded by 9.11 %)."
    );
    Ok(())
}
