//! Fig. 5 — the combined objective `(1 − P_MS) · max(U_LC^LO)` (Eq. 13) of
//! every policy as `U_HC^HI` varies: the single-number comparison in which
//! the proposed scheme dominates.
//!
//! A thin wrapper over the `fig5` campaign in `mc_exp::catalog` — the
//! same definition `chebymc exp run fig5` executes, run here against an
//! in-memory store. The campaign reproduces the pre-campaign binary's
//! numbers bit-for-bit (it derives the identical per-set seed stream), so
//! old and new output can be diffed directly.
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig5`

use chebymc_bench::{task_sets_per_point, trace_from_env, Table};
use mc_exp::catalog::{self, CatalogOptions};
use mc_exp::{aggregate, run_campaign, RunConfig, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = trace_from_env();
    let sets = task_sets_per_point();
    let campaign = catalog::build(
        "fig5",
        &CatalogOptions {
            sets: Some(sets),
            ..CatalogOptions::default()
        },
    )?;
    println!("Fig. 5 — Eq. 13 objective by varying U_HC^HI ({sets} task sets per point)\n");

    let mut store = Store::in_memory(&campaign.spec);
    run_campaign(
        &campaign.spec,
        campaign.runner.as_ref(),
        &mut store,
        &RunConfig::default(),
    )?;
    let aggs = aggregate(&campaign.spec, store.records())?;

    // The axis is policy-major: the first |u| points belong to the first
    // policy, and every point exposes its utilisation as a parameter.
    let policies = catalog::fig5_policies();
    let u_count = campaign.spec.points.len() / policies.len();
    let u_values: Vec<f64> = campaign.spec.points[..u_count]
        .iter()
        .map(|p| p.param("u").expect("fig5 points carry u"))
        .collect();
    let objective = |pi: usize, ui: usize| {
        aggs[pi * u_count + ui]
            .mean("objective")
            .expect("fig5 records carry objective")
    };

    let mut table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(policies.iter().map(|p| p.name()));
        h
    });
    let mut improvements = Vec::new();
    for (ui, &u) in u_values.iter().enumerate() {
        let mut row = vec![format!("{u:.1}")];
        for pi in 0..policies.len() {
            row.push(format!("{:.4}", objective(pi, ui)));
        }
        table.row(row);
        // Improvement of the scheme over the best lambda baseline.
        let ours = objective(0, ui);
        let best_baseline = (1..policies.len())
            .map(|pi| objective(pi, ui))
            .fold(f64::NEG_INFINITY, f64::max);
        if best_baseline > 0.0 {
            improvements.push((u, (ours / best_baseline - 1.0) * 100.0));
        }
    }
    table.emit("fig5");
    println!("objective improvement of the scheme over the best baseline per point:");
    for (u, imp) in &improvements {
        println!("  U_HC^HI = {u:.1}: {imp:+.1} %");
    }
    println!(
        "\nShape to compare with the paper: the scheme's curve dominates every\n\
         policy at every utilisation (the paper reports utilisation improvements\n\
         of up to 85.29 % with P_MS bounded by 9.11 %)."
    );
    Ok(())
}
