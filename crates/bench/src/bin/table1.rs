//! Table I — ACET vs pessimistic WCET for the seven benchmark
//! configurations, and the percentage of instances that overrun when the
//! optimistic WCET is set to the ACET or to WCET_pes/{4,8,16,32,64}.
//!
//! Run: `cargo run -p chebymc-bench --release --bin table1`

use chebymc_bench::{eng, pct, samples_per_benchmark, Table};
use mc_exec::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples = samples_per_benchmark();
    println!(
        "TABLE I — Comparison between ACET and WCET of different applications\n\
         ({samples} sampled instances per application; paper: 20000 on MEET)\n"
    );
    let mut table = Table::new([
        "Application",
        "ACET",
        "WCET_pes",
        "Std-Dev",
        "@ACET %",
        "@W/4 %",
        "@W/8 %",
        "@W/16 %",
        "@W/32 %",
        "@W/64 %",
    ]);
    for (i, bench) in benchmarks::all()?.iter().enumerate() {
        let trace = bench.sample_trace(samples, 100 + i as u64)?;
        let summary = trace.summary()?;
        let spec = bench.spec();
        let levels = [
            summary.mean(),
            spec.wcet_pes / 4.0,
            spec.wcet_pes / 8.0,
            spec.wcet_pes / 16.0,
            spec.wcet_pes / 32.0,
            spec.wcet_pes / 64.0,
        ];
        let mut cells = vec![
            bench.name().to_string(),
            eng(summary.mean()),
            eng(spec.wcet_pes),
            eng(summary.std_dev()),
        ];
        for level in levels {
            cells.push(pct(trace.overrun_rate(level)?.rate()));
        }
        table.row(cells);
    }
    table.emit("table1");
    println!(
        "Shape to compare with the paper: ~50 % overruns at the ACET for every\n\
         application, 0 % at WCET/4, and wildly inconsistent behaviour at\n\
         deeper fractions (qsort-10 and edge saturate near 100 % at WCET/16\n\
         while qsort-10000 and epic stay near 0 %) — no single lambda works."
    );
    Ok(())
}
