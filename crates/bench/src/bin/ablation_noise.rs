//! Ablation — robustness of the scheme to measurement error.
//!
//! The scheme consumes *measured* (ACET, σ). If the deployment-time
//! distribution drifts from the measurement campaign (different inputs,
//! cache state, thermal throttling), the Chebyshev bound computed at design
//! time refers to the wrong moments. This experiment designs with noisy
//! moments and measures the *true* overrun rate of the assigned budgets
//! against the clean distribution, asking: how much drift does the
//! distribution-free slack absorb?
//!
//! Run: `cargo run -p chebymc-bench --release --bin ablation_noise`

use chebymc_bench::{pct, samples_per_benchmark, Table};
use mc_exec::benchmarks;
use mc_stats::chebyshev::one_sided_bound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count = samples_per_benchmark();
    let n = 3.0;
    println!(
        "Ablation — design with drifted (ACET, σ), evaluate on the true\n\
         distribution (n = {n}, bound = {} %, {count} samples)\n",
        pct(one_sided_bound(n))
    );
    let mut table = Table::new([
        "benchmark",
        "drift",
        "designed C_LO",
        "true overrun %",
        "within bound",
    ]);
    for bench in benchmarks::table2_suite()? {
        let truth = bench.sample_trace(count, 7)?;
        let s = truth.summary()?;
        for (label, acet_scale, sigma_scale) in [
            ("none", 1.0, 1.0),
            ("ACET -10%", 0.9, 1.0),
            ("ACET +10%", 1.1, 1.0),
            ("sigma -30%", 1.0, 0.7),
            ("sigma +30%", 1.0, 1.3),
            ("both -20%", 0.8, 0.8),
        ] {
            let c_lo = s.mean() * acet_scale + n * s.std_dev() * sigma_scale;
            let measured = truth.overrun_rate(c_lo)?.rate();
            table.row([
                bench.name().to_string(),
                label.to_string(),
                format!("{c_lo:.0}"),
                pct(measured),
                format!("{}", measured <= one_sided_bound(n)),
            ]);
        }
    }
    table.emit("ablation_noise");
    println!(
        "Reading the table: because the measured overrun sits far below the\n\
         bound (Table II), moderate drift in either moment leaves the *true*\n\
         rate within the nominal 10 % budget; only simultaneous underestimation\n\
         of both moments erodes the margin materially. This quantifies the\n\
         safety cushion the distribution-free bound buys."
    );
    Ok(())
}
