//! Ablation — solver choice for the Eq. 13 problem (DESIGN.md §5):
//! the paper's GA vs simulated annealing vs the best *uniform* n vs
//! exhaustive per-task grid search (ground truth on small sets), in both
//! solution quality and wall-clock time.
//!
//! Run: `cargo run -p chebymc-bench --release --bin ablation_optimizers`

use chebymc_bench::Table;
use mc_opt::anneal::{anneal, SaConfig};
use mc_opt::grid::{best_uniform, exhaustive_search};
use mc_opt::{GaConfig, ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation — optimiser choice on the Eq. 13 objective\n");
    // Solver wall-clock is metadata, not a result: the table (and its
    // CSV mirror) must be identical run-to-run, so timings go to stderr
    // instead of a column.
    let mut table = Table::new(["tasks", "U_HC^HI", "solver", "objective", "vs best"]);
    // Small sets admit exhaustive ground truth; larger ones compare the
    // randomized solvers only.
    for (seed, u, small) in [(1u64, 0.3, true), (2, 0.6, true), (3, 0.85, false)] {
        let mut cfg = GeneratorConfig::default();
        if small {
            // Few, chunky tasks so the exhaustive grid stays tractable.
            cfg.task_utilization = (0.1, 0.2);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ts = generate_hc_taskset(u, &cfg, &mut rng)?;
        let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default())?;
        let dim = problem.dimension();

        let mut rows: Vec<(String, f64, f64)> = Vec::new(); // (solver, obj, ms)

        let t0 = Instant::now();
        let ga = problem.solve_ga(&GaConfig::default())?;
        rows.push((
            "ga (paper)".into(),
            ga.objective.fitness,
            t0.elapsed().as_secs_f64() * 1e3,
        ));

        let t0 = Instant::now();
        let bounds = problem.bounds()?;
        let sa = anneal(
            &bounds,
            |c| problem.objective(c).fitness,
            &SaConfig {
                iterations: GaConfig::default().population_size * GaConfig::default().generations,
                ..SaConfig::default()
            },
        )?;
        rows.push((
            "sim-anneal".into(),
            sa.best_fitness,
            t0.elapsed().as_secs_f64() * 1e3,
        ));

        let t0 = Instant::now();
        let ns: Vec<f64> = (0..=200).map(|i| i as f64 / 4.0).collect();
        let uni = best_uniform(&problem, &ns)?;
        rows.push((
            "best uniform n".into(),
            uni.objective.fitness,
            t0.elapsed().as_secs_f64() * 1e3,
        ));

        if small && dim <= 4 {
            let t0 = Instant::now();
            let grid: Vec<f64> = (0..=30).map(f64::from).collect();
            let ex = exhaustive_search(&problem, &grid)?;
            rows.push((
                "exhaustive grid".into(),
                ex.objective.fitness,
                t0.elapsed().as_secs_f64() * 1e3,
            ));
        }

        let best = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
        for (solver, obj, ms) in rows {
            eprintln!("  [timing] dim={dim} {solver}: {ms:.1} ms");
            table.row([
                format!("{dim}"),
                format!("{u:.2}"),
                solver,
                format!("{obj:.4}"),
                format!("{:.1}%", obj / best * 100.0),
            ]);
        }
    }
    table.emit("ablation_optimizers");
    println!(
        "Reading the table: the GA and SA reach essentially the grid optimum;\n\
         per-task freedom buys a small margin over the best uniform n, growing\n\
         with task heterogeneity. The paper's GA choice is adequate, not magic."
    );
    Ok(())
}
