//! Ablation — constraint handling for Eq. 9 in the GA (DESIGN.md §5):
//! clamp-repair (genes bounded by each task's max factor, the default)
//! vs death penalty (wide bounds, infeasible chromosomes scored zero).
//!
//! Run: `cargo run -p chebymc-bench --release --bin ablation_constraints`

use chebymc_bench::Table;
use mc_opt::ga::optimize;
use mc_opt::{GaConfig, ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation — Eq. 9 constraint handling in the GA\n");
    let mut table = Table::new([
        "U_HC^HI",
        "seed",
        "clamp-repair obj",
        "death-penalty obj",
        "penalty/clamp %",
    ]);
    let mut ratios = Vec::new();
    for &u in &[0.4, 0.6, 0.8] {
        for seed in 0..5u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
            let ts = generate_hc_taskset(u, &GeneratorConfig::default(), &mut rng)?;
            let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default())?;
            let ga = GaConfig {
                seed,
                ..GaConfig::default()
            };

            let clamp_bounds = problem.bounds()?;
            let clamp = optimize(&clamp_bounds, |c| problem.objective(c).fitness, &ga)?;

            let penalty_bounds = problem.bounds_penalty_only()?;
            let penalty = optimize(&penalty_bounds, |c| problem.objective(c).fitness, &ga)?;

            let ratio = penalty.best_fitness / clamp.best_fitness.max(1e-12) * 100.0;
            ratios.push(ratio);
            table.row([
                format!("{u:.1}"),
                format!("{seed}"),
                format!("{:.4}", clamp.best_fitness),
                format!("{:.4}", penalty.best_fitness),
                format!("{ratio:.1}"),
            ]);
        }
    }
    table.emit("ablation_constraints");
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "mean penalty/clamp quality: {mean:.1} %\n\
         Reading the table: with the generator's generous Eq. 9 headroom both\n\
         handlers land close; clamp-repair never wastes evaluations on dead\n\
         chromosomes, so it is the default. Death penalty degrades when many\n\
         tasks have tight max factors (try lowering the wcet_ratio range)."
    );
    Ok(())
}
