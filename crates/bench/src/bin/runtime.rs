//! Runtime validation — not a numbered figure, but the §I claims the
//! design-time numbers stand on: a designed system's observed mode-switch
//! rate, LC losses and HC deadline safety under the event simulator.
//!
//! Run: `cargo run -p chebymc-bench --release --bin runtime`

use chebymc_bench::{pct, Table};
use chebymc_core::policy::WcetPolicy;
use chebymc_core::scheme::ChebyshevScheme;
use mc_opt::GaConfig;
use mc_sched::sim::{simulate, JobExecModel, LcPolicy, ModeSwitchPolicy, SimConfig};
use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
use mc_task::time::Duration;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Runtime validation — 60 s simulations, profile-driven execution times\n");
    // Wall-clock design time is deliberately *not* a table column: the
    // table is the result payload (mirrored to CSV via CHEBYMC_CSV_DIR)
    // and must be identical run-to-run; timing is narrative metadata,
    // reported in the summary line below.
    let mut table = Table::new([
        "U_bound",
        "policy",
        "P_MS bound %",
        "switch/HCjob %",
        "LC loss %",
        "HC miss",
        "busy %",
    ]);
    let mut design_wall = 0.0f64;
    let mut designs = 0usize;
    for &u in &[0.5, 0.7, 0.9] {
        for seed in 0..3u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 * seed + 7);
            let base = generate_mixed_taskset(u, &GeneratorConfig::default(), &mut rng)?;

            // Chebyshev-GA design, wall-clock tracked: the GA is the
            // design-time cost the parallel hot path exists to shrink
            // (BENCH_ga.json holds the controlled before/after numbers).
            let mut cheb = base.clone();
            let design_start = Instant::now();
            let report = ChebyshevScheme {
                ga: GaConfig {
                    population_size: 48,
                    generations: 40,
                    seed,
                    ..GaConfig::default()
                },
                problem: Default::default(),
            }
            .design(&mut cheb)?;
            let design_ms = design_start.elapsed().as_secs_f64() * 1e3;
            design_wall += design_ms;
            designs += 1;

            // A tight uniform n = 2 design (visible switching) and the
            // λ = 1/32 baseline (heavy switching) on the same set.
            let mut tight = base.clone();
            WcetPolicy::ChebyshevUniform { n: 2.0 }.assign(&mut tight)?;
            let tight_bound = chebymc_core::metrics::design_metrics(&tight)?.p_ms;
            let mut lam = base.clone();
            WcetPolicy::LambdaFraction { lambda: 1.0 / 32.0 }.assign(&mut lam)?;

            for (name, ts, bound) in [
                ("chebyshev-ga", &cheb, report.metrics.p_ms),
                ("chebyshev-n2", &tight, tight_bound),
                ("lambda-1/32", &lam, f64::NAN),
            ] {
                let cfg = SimConfig {
                    horizon: Duration::from_secs(60),
                    lc_policy: LcPolicy::DropAll,
                    exec_model: JobExecModel::Profile,
                    x_factor: None,
                    release_jitter: Duration::ZERO,
                    mode_switch: ModeSwitchPolicy::System,
                    seed: 99 + seed,
                };
                let m = simulate(ts, &cfg)?;
                table.row([
                    format!("{u:.1}"),
                    name.to_string(),
                    if bound.is_nan() {
                        "-".into()
                    } else {
                        pct(bound)
                    },
                    pct(m.switch_rate_per_hc_job()),
                    pct(m.lc_loss_rate()),
                    format!("{}", m.hc_deadline_misses),
                    pct(m.utilization()),
                ]);
            }
        }
    }
    table.emit("runtime");
    println!(
        "Reading the table: observed switch rates stay below the design-time\n\
         Chebyshev bound (the bound is distribution-free and loose), LC losses\n\
         track the switch rate, and the HC-miss column is all zeros.\n\
         Mean GA design time: {:.1} ms over {designs} designs (see BENCH_ga.json\n\
         for the controlled serial-vs-parallel hot-path comparison).",
        design_wall / designs as f64,
    );
    Ok(())
}
