//! Ablation — distribution robustness of Theorem 1 (DESIGN.md §5), plus
//! the EVT comparison from the related-work discussion (§II).
//!
//! The Chebyshev bound `1/(1+n²)` is distribution-free; what varies across
//! execution-time shapes is the *slack* between the bound and the measured
//! exceedance. EVT (Gumbel block-maxima) estimates are tighter when the
//! fit is good but carry no worst-case guarantee.
//!
//! Run: `cargo run -p chebymc-bench --release --bin ablation_distributions`

use chebymc_bench::{pct, samples_per_benchmark, Table};
use mc_stats::chebyshev::one_sided_bound;
use mc_stats::dist::Dist;
use mc_stats::estimate::exceedance_rate;
use mc_stats::evt::evt_level_for_factor;
use mc_stats::summary::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(&'static str, Dist)> {
    let mean = 1.0e6;
    let sd = 1.0e5;
    vec![
        ("normal", Dist::normal(mean, sd).unwrap()),
        (
            "gumbel (right-skew)",
            Dist::gumbel_from_moments(mean, sd).unwrap(),
        ),
        (
            "gumbel-min (left-skew)",
            Dist::gumbel_min_from_moments(mean, sd).unwrap(),
        ),
        (
            "lognormal",
            Dist::log_normal_from_moments(mean, sd).unwrap(),
        ),
        ("weibull k=1.5", {
            // Scale Weibull to the same mean; its σ differs — that is the
            // point: levels are taken from *measured* moments either way.
            let g1 = mc_stats::dist::gamma(1.0 + 1.0 / 1.5);
            Dist::weibull(1.5, mean / g1).unwrap()
        }),
        (
            "bimodal mixture",
            Dist::mixture([
                (0.8, Dist::normal(mean * 0.95, sd * 0.5).unwrap()),
                (0.2, Dist::normal(mean * 1.2, sd * 0.8).unwrap()),
            ])
            .unwrap(),
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count = samples_per_benchmark();
    println!(
        "Ablation — measured exceedance at ACET + n·σ vs the Chebyshev bound,\n\
         across execution-time distribution families ({count} samples each)\n"
    );
    let mut table = Table::new([
        "family",
        "n=1 meas%",
        "n=1 bound%",
        "n=2 meas%",
        "n=2 bound%",
        "n=3 meas%",
        "n=3 bound%",
    ]);
    for (i, (name, dist)) in families().into_iter().enumerate() {
        let samples = dist.sample_vec(&mut StdRng::seed_from_u64(10 + i as u64), count);
        let s = Summary::from_samples(&samples)?;
        let mut cells = vec![name.to_string()];
        for n in [1.0, 2.0, 3.0] {
            let level = s.mean() + n * s.std_dev();
            let measured = exceedance_rate(&samples, level)?.rate();
            let bound = one_sided_bound(n);
            assert!(
                measured <= bound + 1e-12,
                "{name}: Theorem 1 violated ({measured} > {bound})"
            );
            cells.push(pct(measured));
            cells.push(pct(bound));
        }
        table.row(cells);
    }
    table.emit("ablation_distributions");

    println!("EVT (Gumbel block-maxima, block 50) vs Chebyshev at equal risk p = 1/(1+n²):\n");
    let mut evt_table = Table::new([
        "family",
        "n",
        "chebyshev level",
        "evt level",
        "evt/chebyshev",
    ]);
    for (i, (name, dist)) in families().into_iter().enumerate() {
        let samples = dist.sample_vec(&mut StdRng::seed_from_u64(40 + i as u64), count);
        let s = Summary::from_samples(&samples)?;
        for n in [2.0, 3.0] {
            let cheb = s.mean() + n * s.std_dev();
            let evt = evt_level_for_factor(&samples, 50, n)?;
            evt_table.row([
                name.to_string(),
                format!("{n:.0}"),
                format!("{cheb:.0}"),
                format!("{evt:.0}"),
                format!("{:.3}", evt / cheb),
            ]);
        }
    }
    evt_table.emit("ablation_evt");
    println!(
        "Reading the tables: Theorem 1 holds for every family (it must), with\n\
         2-10x slack on light tails. EVT levels sit below Chebyshev levels at\n\
         equal nominal risk — tighter budgets, but only as sound as the fit;\n\
         the paper's §II argues exactly this trade-off motivates Chebyshev."
    );
    Ok(())
}
