//! Extension experiment — the multi-level scheme (the paper's §VI future
//! work): per-mode factor sweeps on three-level systems, escalation bounds
//! vs admissible level-0 utilisation, and runtime validation.
//!
//! Run: `cargo run -p chebymc-bench --release --bin multi`

use chebymc_bench::{pct, Table};
use chebymc_core::multi::MultiScheme;
use mc_sched::analysis::multi::analyze;
use mc_sched::sim::{simulate_multi, MultiExecModel, MultiSimConfig};
use mc_task::multi::{MultiTask, MultiTaskSet};
use mc_task::time::Duration;
use mc_task::{ExecutionProfile, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random three-level system: levels drawn uniformly, profiles with a
/// 5-60x WCET/ACET gap (Table I-like).
fn random_tri_level(seed: u64, per_task_u_top: f64, tasks: usize) -> MultiTaskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = MultiTaskSet::new(3).unwrap();
    for i in 0..tasks {
        let level = rng.random_range(0..3usize);
        let period = Duration::from_millis(rng.random_range(100..=900));
        let top = period.mul_f64(per_task_u_top).max(Duration::from_nanos(1));
        let profile = if level > 0 {
            let ratio = rng.random_range(5.0..60.0);
            let acet = top.as_nanos() as f64 / ratio;
            let sigma = acet * rng.random_range(0.05..0.3);
            Some(ExecutionProfile::new(acet, sigma, top.as_nanos() as f64).unwrap())
        } else {
            None
        };
        let budgets = vec![top; level + 1];
        ts.push(
            MultiTask::new(
                TaskId::new(i as u32),
                format!("t{i}"),
                level,
                budgets,
                period,
                profile,
            )
            .unwrap(),
        )
        .unwrap();
    }
    ts
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Multi-level extension — per-mode uniform factor sweep (3 levels)\n");
    let base = random_tri_level(42, 0.12, 9);
    let mut table = Table::new([
        "n0",
        "n1",
        "P(esc mode0) %",
        "P(esc mode1) %",
        "P(top) %",
        "maxU_L0 %",
        "sched",
    ]);
    for &(n0, n1) in &[
        (1.0, 2.0),
        (2.0, 4.0),
        (3.0, 6.0),
        (5.0, 10.0),
        (8.0, 16.0),
        (12.0, 24.0),
    ] {
        let mut ts = base.clone();
        MultiScheme::default().assign(&mut ts, &[n0, n1])?;
        let m = MultiScheme::metrics(&ts)?;
        table.row([
            format!("{n0}"),
            format!("{n1}"),
            pct(m.escalation_bounds[0]),
            pct(m.escalation_bounds[1]),
            pct(m.p_reach_top),
            pct(m.max_u_lowest),
            format!("{}", m.analysis.schedulable),
        ]);
    }
    table.emit("multi_sweep");

    println!("GA-designed per-mode factors, then adversarial runtime (20 s):\n");
    let mut results = Table::new([
        "seed",
        "n0",
        "n1",
        "design P(esc0) %",
        "observed esc0/upper-job %",
        "top-level misses",
        "sched",
    ]);
    for seed in 0..5u64 {
        let mut ts = random_tri_level(100 + seed, 0.10, 8);
        let report = MultiScheme::with_seed(seed).design(&mut ts)?;
        if !report.metrics.analysis.schedulable {
            results.row([
                format!("{seed}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "infeasible".into(),
            ]);
            continue;
        }
        let sim = simulate_multi(
            &ts,
            &MultiSimConfig {
                horizon: Duration::from_secs(20),
                exec_model: MultiExecModel::Profile,
                seed,
            },
        )?;
        let upper: u64 = sim.released_per_level[1..].iter().sum();
        results.row([
            format!("{seed}"),
            format!("{:.1}", report.factors[0]),
            format!("{:.1}", report.factors[1]),
            pct(report.metrics.escalation_bounds[0]),
            pct(sim.escalations[0] as f64 / upper.max(1) as f64),
            format!("{}", sim.top_level_misses()),
            format!("{}", analyze(&ts).schedulable),
        ]);
    }
    results.emit("multi_runtime");
    println!(
        "Reading the tables: raising the per-mode factors drives every\n\
         escalation bound down at a mild cost in admissible level-0\n\
         utilisation — the dual-criticality trade-off, mode by mode. GA\n\
         designs keep observed escalations below the design bound and the\n\
         top level never misses."
    );
    Ok(())
}
