//! Fig. 2 — effect of a uniform `n` on the maximum LC utilisation and the
//! mode-switching probability for one example task set (the paper's case
//! study has `U_HC^HI = 0.85`), and the Eq. 13 objective locating the
//! optimum `n`.
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig2`

use chebymc_bench::{pct, Table};
use mc_opt::grid::{best_uniform, integer_sweep};
use mc_opt::{ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One example HC-only task set at U_HC^HI = 0.85 (paper's case study).
    let mut rng = rand::rngs::StdRng::seed_from_u64(85);
    let ts = generate_hc_taskset(0.85, &GeneratorConfig::default(), &mut rng)?;
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default())?;
    println!(
        "Fig. 2 — uniform-n sweep on an example task set: {} HC tasks, U_HC^HI = {:.3}\n",
        problem.dimension(),
        problem.u_hc_hi()
    );

    let sweep = integer_sweep(&problem, 40)?;
    let mut table = Table::new(["n", "P_MS %", "max U_LC^LO %", "objective (Eq.13)"]);
    for point in &sweep {
        table.row([
            format!("{:.0}", point.n),
            pct(point.objective.p_ms),
            pct(point.objective.max_u_lc_lo),
            format!("{:.4}", point.objective.fitness),
        ]);
    }
    table.emit("fig2");

    let ns: Vec<f64> = (0..=40).map(f64::from).collect();
    let best = best_uniform(&problem, &ns)?;
    println!(
        "optimum uniform n = {:.0}: max U_LC^LO = {:.0} %, P_MS = {:.2}",
        best.n,
        best.objective.max_u_lc_lo * 100.0,
        best.objective.p_ms
    );
    println!(
        "\nShape to compare with the paper (Fig. 2a/2b): P_MS falls steeply with n\n\
         while max U_LC^LO declines slowly, so their product peaks at an interior\n\
         optimum (the paper finds n = 18 with max U_LC^LO = 73 % and P_MS = 0.08\n\
         for its case study)."
    );
    Ok(())
}
