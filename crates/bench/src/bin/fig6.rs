//! Fig. 6 — acceptance ratio (fraction of schedulable task sets) of the
//! two state-of-the-art scheduling approaches, with and without the
//! proposed WCET-assignment scheme, as the bound utilisation grows.
//!
//! Task sets are generated to a **LO-mode** utilisation bound with HC tasks
//! budgeted the λ-baseline way (`C_LO = λᵢ·C_HI`, `λᵢ ∈ [1/4, 1]`). The
//! published approaches are tested as generated; the "+ scheme" variants
//! first re-derive every `C_LO` from `(ACET, σ)` with the Chebyshev GA.
//! Baruah et al. RTNS'12 drops LC tasks in HI mode; Liu et al. RTSS'16
//! degrades them to 50 %.
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig6`

use chebymc_bench::{pct, task_sets_per_point, Table};
use chebymc_core::pipeline::{acceptance_ratio_lo_bounded, BatchConfig, SchedulingApproach};
use chebymc_core::policy::WcetPolicy;
use mc_opt::{GaConfig, ProblemConfig};
use mc_task::generate::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = BatchConfig {
        task_sets: task_sets_per_point(),
        seed: 6,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let u_bounds: Vec<f64> = (10..=20).map(|i| i as f64 / 20.0).collect(); // 0.5 … 1.0
    let lambda_range = (0.25, 1.0);
    println!(
        "Fig. 6 — acceptance ratio vs U_bound ({} task sets per point, P(HC) = 0.5,\n\
         baseline budgets C_LO = lambda*C_HI with lambda in [1/4, 1])\n",
        batch.task_sets
    );

    let scheme = WcetPolicy::ChebyshevGa {
        ga: GaConfig {
            population_size: 48,
            generations: 40,
            ..GaConfig::default()
        },
        problem: ProblemConfig::default(),
    };

    let variants: Vec<(&str, Option<&WcetPolicy>, SchedulingApproach)> = vec![
        ("Baruah'12", None, SchedulingApproach::BaruahDropAll),
        (
            "Baruah'12+scheme",
            Some(&scheme),
            SchedulingApproach::BaruahDropAll,
        ),
        (
            "Liu'16",
            None,
            SchedulingApproach::LiuDegrade { fraction: 0.5 },
        ),
        (
            "Liu'16+scheme",
            Some(&scheme),
            SchedulingApproach::LiuDegrade { fraction: 0.5 },
        ),
    ];

    let mut table = Table::new({
        let mut h = vec!["U_bound".to_string()];
        h.extend(variants.iter().map(|(name, _, _)| format!("{name} %")));
        h
    });
    let mut results = Vec::new();
    for (_, policy, approach) in &variants {
        results.push(acceptance_ratio_lo_bounded(
            &u_bounds,
            *policy,
            *approach,
            lambda_range,
            &batch,
        )?);
    }
    for (ui, &u) in u_bounds.iter().enumerate() {
        let mut row = vec![format!("{u:.2}")];
        for r in &results {
            row.push(pct(r[ui].ratio));
        }
        table.row(row);
    }
    table.emit("fig6");
    println!(
        "Shape to compare with the paper: all approaches accept everything up to\n\
         U_bound ≈ 0.7; beyond that the plain approaches decay (approaching 0 by\n\
         ~0.9-1.0) while the scheme-assisted variants keep accepting nearly all\n\
         sets through 0.9."
    );
    Ok(())
}
