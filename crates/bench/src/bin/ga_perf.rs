//! GA hot-path performance tracking: wall-clock, raw and *effective*
//! objective throughput for `solve_ga`-shaped runs, emitted
//! machine-readably to `BENCH_ga.json`.
//!
//! Five configurations are timed on the paper-scale problem:
//!
//! * `baseline_serial` — a frozen copy of the pre-optimization GA
//!   (clone-heavy `Vec<Vec<f64>>` population, full sort for elitism, no
//!   memoization, serial evaluation), kept here so the perf trajectory
//!   is measurable on any machine without checking out old commits.
//! * `new_serial` / `new_parallel` — the closure backend with the memo
//!   cache, pinned to one thread / on all available cores.
//! * `incremental_serial` / `incremental_parallel` — the delta-fitness
//!   backend over the problem's `ObjectiveCache`, which re-folds only
//!   the blocks a child's crossover span or mutation touched.
//!
//! Every configuration consumes RNG draws in the same order, so all
//! five must return bit-identical results — the run aborts if not.
//!
//! Two throughput figures are reported per run and the speedup lines
//! quote the effective one:
//!
//! * `raw_evals_per_sec` — objective computations actually executed
//!   (full folds plus delta re-folds) per second.
//! * `effective_evals_per_sec` — candidate evaluations *served* per
//!   second, counting memo hits, batch duplicates and carried children.
//!   This is the number that decides how long a search takes.
//!
//! `CHEBYMC_GA_SCALING=smoke|full` appends a threads × population ×
//! task-count sweep (including a generated 1 000-task set) with
//! per-cell bit-identity flags; `off` (the default) skips it.
//!
//! After the timed (untraced) runs, two extra serial runs execute with
//! the mc-obs sink enabled to break the wall clock down by GA stage for
//! each backend (`stage_breakdown` in the JSON). The timed numbers are
//! never taken with tracing on. When `CHEBYMC_TRACE` is set, the
//! closure-path breakdown trace is also written to the named file for
//! `chebymc trace summary`.
//!
//! Run: `cargo run -p chebymc-bench --release --bin ga_perf`
//! Output path override: `CHEBYMC_BENCH_GA_JSON=/path/to/out.json`

use mc_opt::ga::{optimize_with_stats, EvalStats, GaConfig, GaResult, GeneBounds};
use mc_opt::incremental::optimize_incremental;
use mc_opt::{ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Frozen pre-optimization GA, bit-compatible with the current one.
mod baseline {
    use mc_opt::ga::{GaConfig, GaResult, GeneBounds, GenerationStats};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample<R: Rng + ?Sized>(b: &GeneBounds, rng: &mut R) -> f64 {
        if b.hi > b.lo {
            rng.random_range(b.lo..=b.hi)
        } else {
            b.lo
        }
    }

    fn tournament<R: Rng + ?Sized>(scores: &[f64], k: usize, rng: &mut R) -> usize {
        let mut winner = rng.random_range(0..scores.len());
        for _ in 1..k {
            let challenger = rng.random_range(0..scores.len());
            if scores[challenger] > scores[winner] {
                winner = challenger;
            }
        }
        winner
    }

    fn two_point_crossover<R: Rng + ?Sized>(a: &mut [f64], b: &mut [f64], rng: &mut R) {
        let n = a.len();
        if n == 1 {
            std::mem::swap(&mut a[0], &mut b[0]);
            return;
        }
        let mut p1 = rng.random_range(0..n);
        let mut p2 = rng.random_range(0..n);
        if p1 > p2 {
            std::mem::swap(&mut p1, &mut p2);
        }
        for i in p1..=p2 {
            std::mem::swap(&mut a[i], &mut b[i]);
        }
    }

    pub fn optimize<F>(bounds: &[GeneBounds], fitness: F, cfg: &GaConfig) -> GaResult
    where
        F: Fn(&[f64]) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let genes = bounds.len();
        let eval = |c: &[f64]| {
            let f = fitness(c);
            if f.is_finite() {
                f
            } else {
                f64::NEG_INFINITY
            }
        };

        let mut population: Vec<Vec<f64>> = (0..cfg.population_size)
            .map(|_| bounds.iter().map(|b| sample(b, &mut rng)).collect())
            .collect();
        let mut scores: Vec<f64> = population.iter().map(|c| eval(c)).collect();

        let mut best = population[0].clone();
        let mut best_fitness = scores[0];
        let mut history = Vec::with_capacity(cfg.generations);

        for generation in 0..cfg.generations {
            let mut gen_best = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for (c, &s) in population.iter().zip(&scores) {
                if s > best_fitness {
                    best_fitness = s;
                    best = c.clone();
                }
                gen_best = gen_best.max(s);
                sum += if s.is_finite() { s } else { 0.0 };
            }
            history.push(GenerationStats {
                generation,
                best: gen_best,
                mean: sum / population.len() as f64,
            });

            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
            let mut next: Vec<Vec<f64>> = order
                .iter()
                .take(cfg.elitism)
                .map(|&i| population[i].clone())
                .collect();

            while next.len() < cfg.population_size {
                let a = tournament(&scores, cfg.tournament_size, &mut rng);
                let b = tournament(&scores, cfg.tournament_size, &mut rng);
                let (mut child1, mut child2) = (population[a].clone(), population[b].clone());
                if rng.random::<f64>() < cfg.crossover_probability {
                    two_point_crossover(&mut child1, &mut child2, &mut rng);
                }
                for child in [&mut child1, &mut child2] {
                    if rng.random::<f64>() < cfg.mutation_probability {
                        let g = rng.random_range(0..genes);
                        child[g] = sample(&bounds[g], &mut rng);
                    }
                    for (x, b) in child.iter_mut().zip(bounds) {
                        *x = x.clamp(b.lo, b.hi);
                    }
                }
                next.push(child1);
                if next.len() < cfg.population_size {
                    next.push(child2);
                }
            }
            population = next;
            scores = population.iter().map(|c| eval(c)).collect();
        }

        for (c, &s) in population.iter().zip(&scores) {
            if s > best_fitness {
                best_fitness = s;
                best = c.clone();
            }
        }

        GaResult {
            best,
            best_fitness,
            history,
        }
    }
}

#[derive(Serialize)]
struct RunRecord {
    name: String,
    threads: usize,
    wall_s: f64,
    /// Candidate evaluations the GA asked for (elites excluded).
    considered: u64,
    /// Objective computations actually executed: full folds plus
    /// incremental re-folds.
    raw_objective_evals: u64,
    delta_evals: u64,
    carried: u64,
    memo_hits: u64,
    batch_dups: u64,
    genes_evaluated: u64,
    genes_total: u64,
    raw_evals_per_sec: f64,
    effective_evals_per_sec: f64,
    best_fitness: f64,
}

/// One cell of the `CHEBYMC_GA_SCALING` sweep.
#[derive(Serialize)]
struct ScalingCell {
    hc_tasks: usize,
    population_size: usize,
    generations: usize,
    threads: usize,
    backend: &'static str,
    wall_s: f64,
    considered: u64,
    raw_objective_evals: u64,
    raw_evals_per_sec: f64,
    effective_evals_per_sec: f64,
    best_fitness: f64,
    /// The cell's `GaResult` equals the 1-thread cell of the same
    /// backend, problem and population — thread count is a pure perf
    /// knob.
    bit_identical_vs_t1: bool,
}

/// Where the wall clock goes inside one serial GA run per backend,
/// measured by dedicated traced runs after the timed ones.
#[derive(Serialize)]
struct StageBreakdown {
    trace_events: u64,
    ga_run_ns: u64,
    generation_ns: u64,
    fitness_batch_ns: u64,
    fitness_batches: u64,
    objective_evals: u64,
    memo_hits: u64,
    incremental_ga_run_ns: u64,
    incremental_fitness_batch_ns: u64,
    incremental_delta_evals: u64,
    incremental_carried: u64,
    incremental_genes_evaluated: u64,
}

#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    machine_threads: usize,
    repeats: usize,
    hc_tasks: usize,
    population_size: usize,
    generations: usize,
    runs: Vec<RunRecord>,
    /// All speedups are ratios of *effective* evaluations per second.
    speedup_new_serial_vs_baseline: f64,
    speedup_parallel_vs_new_serial: f64,
    speedup_parallel_vs_baseline: f64,
    speedup_incremental_vs_new_serial: f64,
    speedup_incremental_vs_baseline: f64,
    results_bit_identical: bool,
    scaling_mode: String,
    scaling: Vec<ScalingCell>,
    stage_breakdown: StageBreakdown,
}

/// A boxed benchmark configuration: one full GA run returning its
/// result and eval accounting.
type Runner<'a> = Box<dyn Fn() -> (GaResult, EvalStats) + 'a>;

fn time_best<F: FnMut() -> (GaResult, EvalStats)>(
    repeats: usize,
    mut run: F,
) -> (GaResult, EvalStats, f64) {
    let mut best_wall = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (result, stats) = run();
        let wall = start.elapsed().as_secs_f64();
        best_wall = best_wall.min(wall);
        out = Some((result, stats));
    }
    let (result, stats) = out.expect("repeats >= 1");
    (result, stats, best_wall)
}

fn record(name: &str, threads: usize, wall: f64, stats: EvalStats, best_fitness: f64) -> RunRecord {
    let raw = stats.full_evals + stats.delta_evals;
    RunRecord {
        name: name.to_string(),
        threads,
        wall_s: wall,
        considered: stats.considered,
        raw_objective_evals: raw,
        delta_evals: stats.delta_evals,
        carried: stats.carried,
        memo_hits: stats.memo_hits,
        batch_dups: stats.batch_dups,
        genes_evaluated: stats.genes_evaluated,
        genes_total: stats.genes_total,
        raw_evals_per_sec: raw as f64 / wall,
        effective_evals_per_sec: stats.considered as f64 / wall,
        best_fitness,
    }
}

/// Builds the three sweep problems: the paper-scale generator default
/// plus synthetic 100- and 1 000-task sets (per-task utilisation scaled
/// down so the target system utilisation spreads over more tasks).
fn scaling_problems(full: bool) -> Result<Vec<WcetProblem>, Box<dyn std::error::Error>> {
    let mut specs: Vec<GeneratorConfig> = vec![GeneratorConfig::default()];
    if full {
        specs.push(GeneratorConfig {
            task_utilization: (0.004, 0.008),
            max_tasks: 4000,
            ..GeneratorConfig::default()
        });
    }
    specs.push(GeneratorConfig {
        task_utilization: (0.0004, 0.0008),
        max_tasks: 4000,
        ..GeneratorConfig::default()
    });
    let mut problems = Vec::new();
    for (i, gen_cfg) in specs.iter().enumerate() {
        let target = if i == 0 { 0.7 } else { 0.6 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7 + i as u64);
        let ts = generate_hc_taskset(target, gen_cfg, &mut rng)?;
        problems.push(WcetProblem::from_taskset(&ts, ProblemConfig::default())?);
    }
    Ok(problems)
}

fn run_scaling(
    mode: &str,
    machine_threads: usize,
) -> Result<Vec<ScalingCell>, Box<dyn std::error::Error>> {
    let full = mode == "full";
    let (generations, repeats) = if full { (80, 5) } else { (30, 6) };
    let populations: &[usize] = if full { &[64, 256] } else { &[64] };
    let mut threads: Vec<usize> = vec![1, 2];
    if full && machine_threads > 2 {
        threads.push(machine_threads);
    }

    println!("\nscaling protocol ({mode}): gens {generations}, {repeats} repeat(s)");
    let mut cells = Vec::new();
    for problem in scaling_problems(full)? {
        let bounds: Vec<GeneBounds> = problem.bounds()?;
        let dim = problem.dimension();
        for &pop in populations {
            // Reference results at one thread, one per backend; every
            // other cell must reproduce them bitwise.
            let mut reference: Vec<(&str, GaResult)> = Vec::new();
            for &t in &threads {
                let cfg = GaConfig {
                    population_size: pop,
                    generations,
                    threads: t,
                    ..GaConfig::default()
                };
                let closure = |c: &[f64]| problem.objective(c).fitness;
                let backends: [(&'static str, Runner); 2] = [
                    (
                        "closure_memo",
                        Box::new(|| optimize_with_stats(&bounds, closure, &cfg).unwrap()),
                    ),
                    (
                        "incremental",
                        Box::new(|| {
                            optimize_incremental(problem.objective_cache(), &bounds, &cfg).unwrap()
                        }),
                    ),
                ];
                for (backend, run) in backends {
                    let (result, stats, wall) = time_best(repeats, &run);
                    let bit_identical_vs_t1 = if t == threads[0] {
                        reference.push((backend, result.clone()));
                        true
                    } else {
                        reference
                            .iter()
                            .find(|(b, _)| *b == backend)
                            .is_some_and(|(_, r)| *r == result)
                    };
                    let cell = ScalingCell {
                        hc_tasks: dim,
                        population_size: pop,
                        generations,
                        threads: t,
                        backend,
                        wall_s: wall,
                        considered: stats.considered,
                        raw_objective_evals: stats.full_evals + stats.delta_evals,
                        raw_evals_per_sec: (stats.full_evals + stats.delta_evals) as f64 / wall,
                        effective_evals_per_sec: stats.considered as f64 / wall,
                        best_fitness: result.best_fitness,
                        bit_identical_vs_t1,
                    };
                    println!(
                        "  {dim:>5} tasks  pop {pop:>3}  t{t}  {backend:>13}: \
                         {:>8.2} ms, {:>12.0} eff evals/s{}",
                        wall * 1e3,
                        cell.effective_evals_per_sec,
                        if bit_identical_vs_t1 {
                            ""
                        } else {
                            "  DIVERGED"
                        },
                    );
                    cells.push(cell);
                }
            }
            // The two backends must agree with each other, not only with
            // themselves across thread counts.
            assert!(
                reference.windows(2).all(|w| w[0].1 == w[1].1),
                "{dim}-task pop {pop}: closure and incremental backends diverged"
            );
        }
    }
    assert!(
        cells.iter().all(|c| c.bit_identical_vs_t1),
        "scaling sweep found thread-count-dependent results"
    );
    Ok(cells)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let repeats: usize = std::env::var("CHEBYMC_GA_REPEATS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let scaling_mode = std::env::var("CHEBYMC_GA_SCALING").unwrap_or_else(|_| "off".into());

    // A realistic problem: a synthetic HC task set at U_HC^HI = 0.7 with
    // the paper's generator defaults, solved by a default GaConfig
    // (pop = 64, gens = 80 — the §V settings).
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ts = generate_hc_taskset(0.7, &GeneratorConfig::default(), &mut rng)?;
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default())?;
    let bounds: Vec<GeneBounds> = problem.bounds()?;
    let cfg = GaConfig::default();
    let genes = problem.dimension() as u64;

    println!(
        "GA perf: {} HC tasks, pop {} x gens {}, {} repeats, {} core(s)\n",
        problem.dimension(),
        cfg.population_size,
        cfg.generations,
        repeats,
        machine_threads
    );

    let baseline_evals = AtomicU64::new(0);
    let counted_objective = |c: &[f64]| {
        baseline_evals.fetch_add(1, Ordering::Relaxed);
        problem.objective(c).fitness
    };
    let objective = |c: &[f64]| problem.objective(c).fitness;

    let mut runs = Vec::new();
    let mut results: Vec<GaResult> = Vec::new();
    let configs: Vec<(&str, usize, Runner)> = vec![
        (
            "baseline_serial",
            1,
            Box::new(|| {
                baseline_evals.store(0, Ordering::Relaxed);
                let r = baseline::optimize(&bounds, counted_objective, &cfg);
                let n = baseline_evals.load(Ordering::Relaxed);
                let stats = EvalStats {
                    considered: n,
                    full_evals: n,
                    genes_evaluated: n * genes,
                    genes_total: n * genes,
                    ..EvalStats::default()
                };
                (r, stats)
            }),
        ),
        (
            "new_serial",
            1,
            Box::new(|| {
                optimize_with_stats(&bounds, objective, &GaConfig { threads: 1, ..cfg }).unwrap()
            }),
        ),
        (
            "new_parallel",
            machine_threads,
            Box::new(|| {
                optimize_with_stats(&bounds, objective, &GaConfig { threads: 0, ..cfg }).unwrap()
            }),
        ),
        (
            "incremental_serial",
            1,
            Box::new(|| {
                optimize_incremental(
                    problem.objective_cache(),
                    &bounds,
                    &GaConfig { threads: 1, ..cfg },
                )
                .unwrap()
            }),
        ),
        (
            "incremental_parallel",
            machine_threads,
            Box::new(|| {
                optimize_incremental(
                    problem.objective_cache(),
                    &bounds,
                    &GaConfig { threads: 0, ..cfg },
                )
                .unwrap()
            }),
        ),
    ];
    for (name, threads, run) in configs {
        let (result, stats, wall) = time_best(repeats, &run);
        let rec = record(name, threads, wall, stats, result.best_fitness);
        println!(
            "{name:>20}: {:>7.2} ms wall, {:>5} raw / {:>5} effective evals, \
             {:>12.0} eff evals/s",
            wall * 1e3,
            rec.raw_objective_evals,
            rec.considered,
            rec.effective_evals_per_sec,
        );
        runs.push(rec);
        results.push(result);
    }

    let identical = results.iter().all(|r| *r == results[0]);
    assert!(
        identical,
        "GaResults diverged across implementations/thread counts"
    );

    // Two extra serial runs with the trace sink on, after all timing, to
    // attribute the wall clock to GA stages per backend. CHEBYMC_TRACE
    // redirects the closure-path trace to a file (still parseable here
    // after shutdown).
    let trace_text = {
        let env_path = std::env::var("CHEBYMC_TRACE").ok();
        let buf = mc_obs::SharedBuffer::new();
        match &env_path {
            Some(p) => mc_obs::init_file(std::path::Path::new(p))?,
            None => mc_obs::init_writer(Box::new(buf.clone()))?,
        }
        let traced = optimize_with_stats(&bounds, objective, &GaConfig { threads: 1, ..cfg });
        mc_obs::shutdown()?;
        let (traced, _) = traced?;
        assert_eq!(traced, results[0], "traced run diverged from timed runs");
        match &env_path {
            Some(p) => {
                eprintln!("(trace written to {p}; inspect with `chebymc trace summary`)");
                std::fs::read_to_string(p)?
            }
            None => buf.take_string(),
        }
    };
    let trace = mc_obs::summary::TraceSummary::parse(&trace_text)?;

    let inc_trace_text = {
        let buf = mc_obs::SharedBuffer::new();
        mc_obs::init_writer(Box::new(buf.clone()))?;
        let traced = optimize_incremental(
            problem.objective_cache(),
            &bounds,
            &GaConfig { threads: 1, ..cfg },
        );
        mc_obs::shutdown()?;
        let (traced, _) = traced?;
        assert_eq!(traced, results[0], "traced incremental run diverged");
        buf.take_string()
    };
    let inc_trace = mc_obs::summary::TraceSummary::parse(&inc_trace_text)?;

    let stage_breakdown = StageBreakdown {
        trace_events: trace.events + inc_trace.events,
        ga_run_ns: trace.span_total_ns("ga.run"),
        generation_ns: trace.span_total_ns("ga.generation"),
        fitness_batch_ns: trace.span_total_ns("ga.fitness_batch"),
        fitness_batches: trace.span_count("ga.fitness_batch"),
        objective_evals: trace.counter_total("ga.evals"),
        memo_hits: trace.counter_total("ga.memo_hits"),
        incremental_ga_run_ns: inc_trace.span_total_ns("ga.run"),
        incremental_fitness_batch_ns: inc_trace.span_total_ns("ga.fitness_batch"),
        incremental_delta_evals: inc_trace.counter_total("ga.delta_evals"),
        incremental_carried: inc_trace.counter_total("ga.carried"),
        incremental_genes_evaluated: inc_trace.counter_total("ga.genes_evaluated"),
    };
    println!(
        "\nstage breakdown (traced serial runs): closure run {:.1} ms \
         ({} evals, {} memo hits), incremental run {:.1} ms \
         ({} deltas, {} carried, {} gene-terms folded)",
        stage_breakdown.ga_run_ns as f64 / 1e6,
        stage_breakdown.objective_evals,
        stage_breakdown.memo_hits,
        stage_breakdown.incremental_ga_run_ns as f64 / 1e6,
        stage_breakdown.incremental_delta_evals,
        stage_breakdown.incremental_carried,
        stage_breakdown.incremental_genes_evaluated,
    );

    let scaling = if scaling_mode == "off" {
        Vec::new()
    } else {
        run_scaling(&scaling_mode, machine_threads)?
    };

    let eff = |name: &str| {
        runs.iter()
            .find(|r| r.name == name)
            .map(|r| r.effective_evals_per_sec)
            .expect("run recorded")
    };
    let report = BenchReport {
        schema_version: 2,
        machine_threads,
        repeats,
        hc_tasks: problem.dimension(),
        population_size: cfg.population_size,
        generations: cfg.generations,
        speedup_new_serial_vs_baseline: eff("new_serial") / eff("baseline_serial"),
        speedup_parallel_vs_new_serial: eff("new_parallel") / eff("new_serial"),
        speedup_parallel_vs_baseline: eff("new_parallel") / eff("baseline_serial"),
        speedup_incremental_vs_new_serial: eff("incremental_serial") / eff("new_serial"),
        speedup_incremental_vs_baseline: eff("incremental_serial") / eff("baseline_serial"),
        results_bit_identical: identical,
        scaling_mode,
        scaling,
        stage_breakdown,
        runs,
    };

    let path = std::env::var("CHEBYMC_BENCH_GA_JSON").unwrap_or_else(|_| "BENCH_ga.json".into());
    std::fs::write(&path, serde_json::to_string_pretty(&report)? + "\n")?;
    println!(
        "\neffective-throughput speedups: new_serial vs baseline {:.2}x   \
         incremental vs new_serial {:.2}x   incremental vs baseline {:.2}x   \
         (written to {path})",
        report.speedup_new_serial_vs_baseline,
        report.speedup_incremental_vs_new_serial,
        report.speedup_incremental_vs_baseline,
    );
    Ok(())
}
