//! GA hot-path performance tracking: before/after wall-clock and
//! evaluations-per-second for `solve_ga` on a default `GaConfig` WCET
//! problem, emitted machine-readably to `BENCH_ga.json`.
//!
//! Three configurations are timed:
//!
//! * `baseline_serial` — a frozen copy of the pre-optimization GA
//!   (clone-heavy `Vec<Vec<f64>>` population, full sort for elitism, no
//!   memoization, serial evaluation), kept here so the perf trajectory
//!   is measurable on any machine without checking out old commits.
//! * `new_serial` — the current allocation-free, memoized GA pinned to
//!   one thread.
//! * `new_parallel` — the same GA on all available cores.
//!
//! The new GA consumes RNG draws in the same order as the baseline, so
//! all three must return bit-identical factors — the run aborts if not.
//!
//! After the timed (untraced) runs, one extra serial run executes with
//! the mc-obs sink enabled to break the wall clock down by GA stage
//! (`stage_breakdown` in the JSON). The timed numbers are never taken
//! with tracing on. When `CHEBYMC_TRACE` is set, that breakdown run's
//! trace is also written to the named file for `chebymc trace summary`.
//!
//! Run: `cargo run -p chebymc-bench --release --bin ga_perf`
//! Output path override: `CHEBYMC_BENCH_GA_JSON=/path/to/out.json`

use mc_opt::ga::{optimize, GaConfig, GaResult, GeneBounds};
use mc_opt::{ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Frozen pre-optimization GA, bit-compatible with the current one.
mod baseline {
    use mc_opt::ga::{GaConfig, GaResult, GeneBounds, GenerationStats};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample<R: Rng + ?Sized>(b: &GeneBounds, rng: &mut R) -> f64 {
        if b.hi > b.lo {
            rng.random_range(b.lo..=b.hi)
        } else {
            b.lo
        }
    }

    fn tournament<R: Rng + ?Sized>(scores: &[f64], k: usize, rng: &mut R) -> usize {
        let mut winner = rng.random_range(0..scores.len());
        for _ in 1..k {
            let challenger = rng.random_range(0..scores.len());
            if scores[challenger] > scores[winner] {
                winner = challenger;
            }
        }
        winner
    }

    fn two_point_crossover<R: Rng + ?Sized>(a: &mut [f64], b: &mut [f64], rng: &mut R) {
        let n = a.len();
        if n == 1 {
            std::mem::swap(&mut a[0], &mut b[0]);
            return;
        }
        let mut p1 = rng.random_range(0..n);
        let mut p2 = rng.random_range(0..n);
        if p1 > p2 {
            std::mem::swap(&mut p1, &mut p2);
        }
        for i in p1..=p2 {
            std::mem::swap(&mut a[i], &mut b[i]);
        }
    }

    pub fn optimize<F>(bounds: &[GeneBounds], fitness: F, cfg: &GaConfig) -> GaResult
    where
        F: Fn(&[f64]) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let genes = bounds.len();
        let eval = |c: &[f64]| {
            let f = fitness(c);
            if f.is_finite() {
                f
            } else {
                f64::NEG_INFINITY
            }
        };

        let mut population: Vec<Vec<f64>> = (0..cfg.population_size)
            .map(|_| bounds.iter().map(|b| sample(b, &mut rng)).collect())
            .collect();
        let mut scores: Vec<f64> = population.iter().map(|c| eval(c)).collect();

        let mut best = population[0].clone();
        let mut best_fitness = scores[0];
        let mut history = Vec::with_capacity(cfg.generations);

        for generation in 0..cfg.generations {
            let mut gen_best = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for (c, &s) in population.iter().zip(&scores) {
                if s > best_fitness {
                    best_fitness = s;
                    best = c.clone();
                }
                gen_best = gen_best.max(s);
                sum += if s.is_finite() { s } else { 0.0 };
            }
            history.push(GenerationStats {
                generation,
                best: gen_best,
                mean: sum / population.len() as f64,
            });

            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
            let mut next: Vec<Vec<f64>> = order
                .iter()
                .take(cfg.elitism)
                .map(|&i| population[i].clone())
                .collect();

            while next.len() < cfg.population_size {
                let a = tournament(&scores, cfg.tournament_size, &mut rng);
                let b = tournament(&scores, cfg.tournament_size, &mut rng);
                let (mut child1, mut child2) = (population[a].clone(), population[b].clone());
                if rng.random::<f64>() < cfg.crossover_probability {
                    two_point_crossover(&mut child1, &mut child2, &mut rng);
                }
                for child in [&mut child1, &mut child2] {
                    if rng.random::<f64>() < cfg.mutation_probability {
                        let g = rng.random_range(0..genes);
                        child[g] = sample(&bounds[g], &mut rng);
                    }
                    for (x, b) in child.iter_mut().zip(bounds) {
                        *x = x.clamp(b.lo, b.hi);
                    }
                }
                next.push(child1);
                if next.len() < cfg.population_size {
                    next.push(child2);
                }
            }
            population = next;
            scores = population.iter().map(|c| eval(c)).collect();
        }

        for (c, &s) in population.iter().zip(&scores) {
            if s > best_fitness {
                best_fitness = s;
                best = c.clone();
            }
        }

        GaResult {
            best,
            best_fitness,
            history,
        }
    }
}

#[derive(Serialize)]
struct RunRecord {
    name: String,
    threads: usize,
    wall_s: f64,
    objective_evals: u64,
    evals_per_sec: f64,
    best_fitness: f64,
}

/// Where the wall clock goes inside one serial GA run, measured by a
/// dedicated traced run after the timed ones.
#[derive(Serialize)]
struct StageBreakdown {
    trace_events: u64,
    ga_run_ns: u64,
    generation_ns: u64,
    fitness_batch_ns: u64,
    fitness_batches: u64,
    objective_evals: u64,
    memo_hits: u64,
}

#[derive(Serialize)]
struct BenchReport {
    machine_threads: usize,
    repeats: usize,
    hc_tasks: usize,
    population_size: usize,
    generations: usize,
    runs: Vec<RunRecord>,
    speedup_new_serial_vs_baseline: f64,
    speedup_parallel_vs_new_serial: f64,
    speedup_parallel_vs_baseline: f64,
    results_bit_identical: bool,
    stage_breakdown: StageBreakdown,
}

fn time_best<F: FnMut() -> (GaResult, u64)>(repeats: usize, mut run: F) -> (GaResult, u64, f64) {
    let mut best_wall = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (result, evals) = run();
        let wall = start.elapsed().as_secs_f64();
        best_wall = best_wall.min(wall);
        out = Some((result, evals));
    }
    let (result, evals) = out.expect("repeats >= 1");
    (result, evals, best_wall)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let repeats: usize = std::env::var("CHEBYMC_GA_REPEATS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // A realistic problem: a synthetic HC task set at U_HC^HI = 0.7 with
    // the paper's generator defaults, solved by a default GaConfig
    // (pop = 64, gens = 80 — the §V settings).
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ts = generate_hc_taskset(0.7, &GeneratorConfig::default(), &mut rng)?;
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default())?;
    let bounds: Vec<GeneBounds> = problem.bounds()?;
    let cfg = GaConfig::default();

    println!(
        "GA perf: {} HC tasks, pop {} x gens {}, {} repeats, {} core(s)\n",
        problem.dimension(),
        cfg.population_size,
        cfg.generations,
        repeats,
        machine_threads
    );

    let evals = AtomicU64::new(0);
    let objective = |c: &[f64]| {
        evals.fetch_add(1, Ordering::Relaxed);
        problem.objective(c).fitness
    };

    let mut runs = Vec::new();
    let mut results: Vec<GaResult> = Vec::new();
    type Runner<'a> = Box<dyn Fn() -> GaResult + 'a>;
    let configs: Vec<(&str, usize, Runner)> = vec![
        (
            "baseline_serial",
            1,
            Box::new(|| baseline::optimize(&bounds, objective, &cfg)),
        ),
        (
            "new_serial",
            1,
            Box::new(|| optimize(&bounds, objective, &GaConfig { threads: 1, ..cfg }).unwrap()),
        ),
        (
            "new_parallel",
            machine_threads,
            Box::new(|| optimize(&bounds, objective, &GaConfig { threads: 0, ..cfg }).unwrap()),
        ),
    ];
    for (name, threads, run) in configs {
        let (result, n_evals, wall) = time_best(repeats, || {
            evals.store(0, Ordering::Relaxed);
            let r = run();
            (r, evals.load(Ordering::Relaxed))
        });
        let evals_per_sec = n_evals as f64 / wall;
        println!(
            "{name:>16}: {:.1} ms wall, {n_evals} objective evals, {:.0} evals/s",
            wall * 1e3,
            evals_per_sec
        );
        runs.push(RunRecord {
            name: name.to_string(),
            threads,
            wall_s: wall,
            objective_evals: n_evals,
            evals_per_sec,
            best_fitness: result.best_fitness,
        });
        results.push(result);
    }

    let identical = results.iter().all(|r| *r == results[0]);
    assert!(
        identical,
        "GaResults diverged across implementations/thread counts"
    );

    // One extra serial run with the trace sink on, after all timing, to
    // attribute the wall clock to GA stages. CHEBYMC_TRACE redirects the
    // raw trace to a file (still parseable here after shutdown).
    let trace_text = {
        let env_path = std::env::var("CHEBYMC_TRACE").ok();
        let buf = mc_obs::SharedBuffer::new();
        match &env_path {
            Some(p) => mc_obs::init_file(std::path::Path::new(p))?,
            None => mc_obs::init_writer(Box::new(buf.clone()))?,
        }
        let traced = optimize(&bounds, objective, &GaConfig { threads: 1, ..cfg });
        mc_obs::shutdown()?;
        let traced = traced?;
        assert_eq!(traced, results[0], "traced run diverged from timed runs");
        match &env_path {
            Some(p) => {
                eprintln!("(trace written to {p}; inspect with `chebymc trace summary`)");
                std::fs::read_to_string(p)?
            }
            None => buf.take_string(),
        }
    };
    let trace = mc_obs::summary::TraceSummary::parse(&trace_text)?;
    let stage_breakdown = StageBreakdown {
        trace_events: trace.events,
        ga_run_ns: trace.span_total_ns("ga.run"),
        generation_ns: trace.span_total_ns("ga.generation"),
        fitness_batch_ns: trace.span_total_ns("ga.fitness_batch"),
        fitness_batches: trace.span_count("ga.fitness_batch"),
        objective_evals: trace.counter_total("ga.evals"),
        memo_hits: trace.counter_total("ga.memo_hits"),
    };
    println!(
        "\nstage breakdown (traced serial run): run {:.1} ms, fitness batches {} \
         ({:.1} ms, {:.0}% of run), {} evals, {} memo hits",
        stage_breakdown.ga_run_ns as f64 / 1e6,
        stage_breakdown.fitness_batches,
        stage_breakdown.fitness_batch_ns as f64 / 1e6,
        100.0 * stage_breakdown.fitness_batch_ns as f64 / stage_breakdown.ga_run_ns.max(1) as f64,
        stage_breakdown.objective_evals,
        stage_breakdown.memo_hits,
    );

    let wall = |name: &str| {
        runs.iter()
            .find(|r| r.name == name)
            .map(|r| r.wall_s)
            .expect("run recorded")
    };
    let report = BenchReport {
        machine_threads,
        repeats,
        hc_tasks: problem.dimension(),
        population_size: cfg.population_size,
        generations: cfg.generations,
        speedup_new_serial_vs_baseline: wall("baseline_serial") / wall("new_serial"),
        speedup_parallel_vs_new_serial: wall("new_serial") / wall("new_parallel"),
        speedup_parallel_vs_baseline: wall("baseline_serial") / wall("new_parallel"),
        results_bit_identical: identical,
        stage_breakdown,
        runs,
    };

    let path = std::env::var("CHEBYMC_BENCH_GA_JSON").unwrap_or_else(|_| "BENCH_ga.json".into());
    std::fs::write(&path, serde_json::to_string_pretty(&report)? + "\n")?;
    println!(
        "\nnew_serial vs baseline: {:.2}x   parallel vs new_serial: {:.2}x   (written to {path})",
        report.speedup_new_serial_vs_baseline, report.speedup_parallel_vs_new_serial
    );
    Ok(())
}
