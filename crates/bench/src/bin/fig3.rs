//! Fig. 3 — effect of `n` and the HC tasks' utilisation on the
//! mode-switching probability (a), the maximum assigned LC utilisation (b),
//! and the Eq. 13 product locating the optimum `n` per utilisation (c).
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig3`
//! Scale with `CHEBYMC_SETS` (paper: 1000 task sets per point).

use chebymc_bench::{pct, task_sets_per_point, Table};
use chebymc_core::pipeline::{evaluate_policy_over_utilization, BatchConfig};
use chebymc_core::policy::WcetPolicy;
use mc_task::generate::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = BatchConfig {
        task_sets: task_sets_per_point(),
        seed: 3,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let u_values: Vec<f64> = (4..=9).map(|i| i as f64 / 10.0).collect();
    let n_values = [2.0, 5.0, 10.0, 15.0, 20.0, 30.0];
    println!(
        "Fig. 3 — n and U_HC^HI sweep ({} task sets per point)\n",
        batch.task_sets
    );

    let mut p_ms_table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(n_values.iter().map(|n| format!("P_MS% @n={n}")));
        h
    });
    let mut u_table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(n_values.iter().map(|n| format!("maxU% @n={n}")));
        h
    });
    let mut obj_table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(n_values.iter().map(|n| format!("obj @n={n}")));
        h.push("optimum n".into());
        h
    });

    // Evaluate each n over all utilisation points.
    let mut per_n = Vec::new();
    for &n in &n_values {
        let points = evaluate_policy_over_utilization(
            &u_values,
            &WcetPolicy::ChebyshevUniform { n },
            &batch,
        )?;
        per_n.push(points);
    }
    for (ui, &u) in u_values.iter().enumerate() {
        let mut p_row = vec![format!("{u:.1}")];
        let mut u_row = vec![format!("{u:.1}")];
        let mut o_row = vec![format!("{u:.1}")];
        let mut best = (f64::NEG_INFINITY, 0.0);
        for points in &per_n {
            let pt = &points[ui];
            p_row.push(pct(pt.mean_p_ms));
            u_row.push(pct(pt.mean_max_u_lc_lo));
            o_row.push(format!("{:.4}", pt.mean_objective));
            if pt.mean_objective > best.0 {
                best = (pt.mean_objective, points[ui].u_hc_hi);
            }
        }
        // Optimum n on a finer grid for this utilisation.
        let fine: Vec<f64> = (0..=40).map(f64::from).collect();
        let mut best_n = 0.0;
        let mut best_obj = f64::NEG_INFINITY;
        for &n in &fine {
            let pts = evaluate_policy_over_utilization(
                &[u],
                &WcetPolicy::ChebyshevUniform { n },
                &BatchConfig {
                    task_sets: (batch.task_sets / 10).max(10),
                    ..batch.clone()
                },
            )?;
            if pts[0].mean_objective > best_obj {
                best_obj = pts[0].mean_objective;
                best_n = n;
            }
        }
        o_row.push(format!("{best_n:.0}"));
        p_ms_table.row(p_row);
        u_table.row(u_row);
        obj_table.row(o_row);
    }

    println!("(a) mode-switching probability:");
    p_ms_table.emit("fig3a");
    println!("(b) maximum assigned LC utilisation:");
    u_table.emit("fig3b");
    println!("(c) objective and optimum n per utilisation:");
    obj_table.emit("fig3c");
    println!(
        "Shape to compare with the paper: P_MS rises with U_HC^HI at fixed n\n\
         (e.g. n=10: ~13 % at U=0.4 vs ~24 % at U=0.8 in the paper) and falls\n\
         with n; max U_LC^LO falls with both; the optimum n generally decreases\n\
         as utilisation grows."
    );
    Ok(())
}
