//! Fig. 4 — the proposed scheme (GA-optimised per-task `n`) against the
//! λ-range policies of the state of the art: mode-switching probability and
//! maximum LC utilisation per HC utilisation.
//!
//! Run: `cargo run -p chebymc-bench --release --bin fig4`
//! Scale with `CHEBYMC_SETS` (paper: 1000 task sets per point).

use chebymc_bench::{pct, task_sets_per_point, Table};
use chebymc_core::pipeline::{evaluate_policy_over_utilization, BatchConfig};
use chebymc_core::policy::{paper_lambda_baselines, WcetPolicy};
use mc_opt::{GaConfig, ProblemConfig};
use mc_task::generate::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = BatchConfig {
        task_sets: task_sets_per_point(),
        seed: 4,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let u_values: Vec<f64> = (4..=9).map(|i| i as f64 / 10.0).collect();
    println!(
        "Fig. 4 — proposed scheme vs lambda-range policies ({} task sets per point)\n",
        batch.task_sets
    );

    let mut policies: Vec<WcetPolicy> = vec![WcetPolicy::ChebyshevGa {
        ga: GaConfig {
            population_size: 48,
            generations: 40,
            ..GaConfig::default()
        },
        problem: ProblemConfig::default(),
    }];
    policies.extend(paper_lambda_baselines());

    let mut p_table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(policies.iter().map(|p| format!("P_MS% {}", p.name())));
        h
    });
    let mut u_table = Table::new({
        let mut h = vec!["U_HC^HI".to_string()];
        h.extend(policies.iter().map(|p| format!("maxU% {}", p.name())));
        h
    });

    let mut per_policy = Vec::new();
    for policy in &policies {
        per_policy.push(evaluate_policy_over_utilization(&u_values, policy, &batch)?);
    }
    for (ui, &u) in u_values.iter().enumerate() {
        let mut p_row = vec![format!("{u:.1}")];
        let mut u_row = vec![format!("{u:.1}")];
        for points in &per_policy {
            p_row.push(pct(points[ui].mean_p_ms));
            u_row.push(pct(points[ui].mean_max_u_lc_lo));
        }
        p_table.row(p_row);
        u_table.row(u_row);
    }
    println!("(a) mode-switching probability:");
    p_table.emit("fig4a");
    println!("(b) maximum assigned LC utilisation:");
    u_table.emit("fig4b");
    println!(
        "Shape to compare with the paper: conservative ranges (lambda in [1/4,1])\n\
         achieve tiny P_MS but poor max U_LC^LO (the paper reports 0.13 % / 32.6 %\n\
         at U = 0.8); aggressive ranges (lambda in [1/32,1]) achieve high\n\
         utilisation at ~93 % switching; the proposed scheme gets both\n\
         (paper: 6.61 % / 82.45 % at U = 0.8)."
    );
    Ok(())
}
