//! Table II — the effect of the Chebyshev factor `n` on task overrunning:
//! the distribution-free analysis bound `1/(1+n²)` against the measured
//! overrun percentage of each benchmark at `ACET + n·σ`.
//!
//! Run: `cargo run -p chebymc-bench --release --bin table2`

use chebymc_bench::{pct, samples_per_benchmark, Table};
use mc_exec::benchmarks;
use mc_stats::chebyshev::one_sided_bound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples = samples_per_benchmark();
    println!(
        "TABLE II — The effect of n on task overrunning\n\
         (measured on {samples} sampled instances per application)\n"
    );
    let suite = benchmarks::table2_suite()?;
    let mut header = vec!["".to_string(), "Analysis".to_string()];
    header.extend(suite.iter().map(|b| b.name().to_string()));
    let mut table = Table::new(header);

    // Pre-sample each benchmark once.
    let mut traces = Vec::new();
    for (i, bench) in suite.iter().enumerate() {
        traces.push(bench.sample_trace(samples, 200 + i as u64)?);
    }
    for n in 0..=4u32 {
        let mut cells = vec![
            format!("n={n}"),
            format!("{}%", pct(one_sided_bound(n as f64))),
        ];
        for trace in &traces {
            let s = trace.summary()?;
            let level = s.mean() + n as f64 * s.std_dev();
            cells.push(format!("{}%", pct(trace.overrun_rate(level)?.rate())));
        }
        table.row(cells);
    }
    table.emit("table2");
    println!(
        "Shape to compare with the paper: every measured column sits well below\n\
         the distribution-free analysis bound — ~9-16 % at n=1 vs the 50 % bound,\n\
         ~2-3 % at n=2 vs 20 %, and near zero from n=3 on."
    );
    Ok(())
}
