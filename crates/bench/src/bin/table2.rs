//! Table II — the effect of the Chebyshev factor `n` on task overrunning:
//! the distribution-free analysis bound `1/(1+n²)` against the measured
//! overrun percentage of each benchmark at `ACET + n·σ`.
//!
//! A thin wrapper over the `table2` campaign in `mc_exp::catalog` (the
//! definition `chebymc exp run table2` executes), run against an
//! in-memory store; the campaign reuses the legacy per-benchmark trace
//! seeds, so the cells match the pre-campaign binary exactly.
//!
//! Run: `cargo run -p chebymc-bench --release --bin table2`

use chebymc_bench::{pct, samples_per_benchmark, trace_from_env, Table};
use mc_exp::catalog::{self, CatalogOptions};
use mc_exp::{aggregate, run_campaign, RunConfig, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = trace_from_env();
    let samples = samples_per_benchmark();
    println!(
        "TABLE II — The effect of n on task overrunning\n\
         (measured on {samples} sampled instances per application)\n"
    );
    let campaign = catalog::build(
        "table2",
        &CatalogOptions {
            samples: Some(samples),
            ..CatalogOptions::default()
        },
    )?;
    let mut store = Store::in_memory(&campaign.spec);
    run_campaign(
        &campaign.spec,
        campaign.runner.as_ref(),
        &mut store,
        &RunConfig::default(),
    )?;
    let aggs = aggregate(&campaign.spec, store.records())?;

    // Points are benchmark-major with 5 factors each; the label's prefix
    // (before `/n…`) is the benchmark name.
    let n_count = 5;
    let bench_count = campaign.spec.points.len() / n_count;
    let bench_name = |bi: usize| {
        let label = &campaign.spec.points[bi * n_count].label;
        label.split('/').next().unwrap_or(label).to_string()
    };
    let mut header = vec!["".to_string(), "Analysis".to_string()];
    header.extend((0..bench_count).map(bench_name));
    let mut table = Table::new(header);

    for n in 0..n_count {
        let analysis = aggs[n]
            .mean("analysis_bound")
            .expect("table2 records carry analysis_bound");
        let mut cells = vec![format!("n={n}"), format!("{}%", pct(analysis))];
        for bi in 0..bench_count {
            let measured = aggs[bi * n_count + n]
                .mean("overrun_rate")
                .expect("table2 records carry overrun_rate");
            cells.push(format!("{}%", pct(measured)));
        }
        table.row(cells);
    }
    table.emit("table2");
    println!(
        "Shape to compare with the paper: every measured column sits well below\n\
         the distribution-free analysis bound — ~9-16 % at n=1 vs the 50 % bound,\n\
         ~2-3 % at n=2 vs 20 %, and near zero from n=3 on."
    );
    Ok(())
}
