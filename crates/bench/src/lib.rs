//! Shared experiment harness for the `chebymc` reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s per-experiment index) and prints it as an aligned
//! text table plus, optionally, CSV to a file. The experiment *scale* — how
//! many task sets are averaged per point — defaults to a laptop-friendly
//! value and can be raised to the paper's 1000 via the `CHEBYMC_SETS`
//! environment variable.

use std::fmt::Write as _;

/// Number of task sets per data point: `CHEBYMC_SETS` env var, default 200
/// (the paper uses 1000).
pub fn task_sets_per_point() -> usize {
    std::env::var("CHEBYMC_SETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(200)
}

/// Number of execution-time samples per benchmark: `CHEBYMC_SAMPLES`,
/// default 20 000 (the paper's value).
pub fn samples_per_benchmark() -> usize {
    std::env::var("CHEBYMC_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20_000)
}

/// A simple aligned text table with an optional CSV mirror.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        render(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the text table to stdout and, when `CHEBYMC_CSV_DIR` is set,
    /// writes `<dir>/<name>.csv` as well.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_text());
        if let Ok(dir) = std::env::var("CHEBYMC_CSV_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(csv written to {})", path.display());
            }
        }
    }
}

/// Formats a probability as a percentage with two decimals, matching the
/// paper's table style.
pub fn pct(p: f64) -> String {
    format!("{:.2}", p * 100.0)
}

/// Formats a cycle count in engineering notation like the paper's Table I
/// (`2.3e2`).
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = x / 10f64.powi(exp);
    format!("{mantissa:.1}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(vec!["longer-name".to_string()]); // padded
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].contains("name"));
        assert!(text.contains("longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn pct_and_eng_formats() {
        assert_eq!(pct(0.5022), "50.22");
        assert_eq!(pct(0.0), "0.00");
        assert_eq!(eng(230.0), "2.3e2");
        assert_eq!(eng(1.0e10), "1.0e10");
        assert_eq!(eng(0.0), "0");
    }

    #[test]
    fn scale_defaults() {
        // Without env overrides the defaults hold.
        if std::env::var("CHEBYMC_SETS").is_err() {
            assert_eq!(task_sets_per_point(), 200);
        }
        if std::env::var("CHEBYMC_SAMPLES").is_err() {
            assert_eq!(samples_per_benchmark(), 20_000);
        }
    }
}
