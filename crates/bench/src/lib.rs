//! Shared experiment harness for the `chebymc` reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s per-experiment index) and prints it as an aligned
//! text table plus, optionally, CSV to a file. The experiment *scale* — how
//! many task sets are averaged per point — defaults to a laptop-friendly
//! value and can be raised to the paper's 1000 via the `CHEBYMC_SETS`
//! environment variable.

use std::fmt::Write as _;

/// Parses one scale variable's value: absent → `default`; present but not
/// a positive integer → a named error. A set-but-garbled variable must
/// fail loudly — silently falling back to the default would run the whole
/// experiment at the wrong scale.
pub fn parse_scale(name: &str, value: Option<&str>, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!(
                "{name}={v:?} is not a positive integer (unset it to use the default {default})"
            )),
        },
    }
}

/// Reads a scale variable, exiting with status 2 on an unparseable value.
fn scale_env(name: &str, default: usize) -> usize {
    let value = match std::env::var(name) {
        Ok(v) => Some(v),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("error: {name} is set but is not valid unicode");
            std::process::exit(2);
        }
    };
    match parse_scale(name, value.as_deref(), default) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Number of task sets per data point: `CHEBYMC_SETS` env var, default 200
/// (the paper uses 1000). Exits with status 2 when the variable is set to
/// something that is not a positive integer.
pub fn task_sets_per_point() -> usize {
    scale_env("CHEBYMC_SETS", 200)
}

/// Number of execution-time samples per benchmark: `CHEBYMC_SAMPLES`,
/// default 20 000 (the paper's value). Exits with status 2 when the
/// variable is set to something that is not a positive integer.
pub fn samples_per_benchmark() -> usize {
    scale_env("CHEBYMC_SAMPLES", 20_000)
}

/// Guard returned by [`trace_from_env`]. Dropping it finalizes the
/// `CHEBYMC_TRACE` sink (flushing every thread's buffered events); it
/// does nothing when the variable was unset.
#[derive(Debug)]
pub struct TraceGuard {
    path: Option<String>,
}

impl TraceGuard {
    /// The trace file path, when `CHEBYMC_TRACE` was set.
    #[must_use]
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            match mc_obs::shutdown() {
                Ok(()) => {
                    eprintln!("(trace written to {path}; inspect with `chebymc trace summary`)");
                }
                Err(e) => eprintln!("error: could not finalize trace {path}: {e}"),
            }
        }
    }
}

/// Honours the `CHEBYMC_TRACE` environment variable: when set, installs
/// the process-wide mc-obs JSONL sink at that path for the lifetime of
/// the returned guard. Exits with status 2 when the sink cannot be
/// created — an explicitly requested trace that silently fails would
/// leave a long experiment with no artefact.
#[must_use]
pub fn trace_from_env() -> TraceGuard {
    let Ok(path) = std::env::var("CHEBYMC_TRACE") else {
        return TraceGuard { path: None };
    };
    if let Err(e) = mc_obs::init_file(std::path::Path::new(&path)) {
        eprintln!("error: could not create CHEBYMC_TRACE file {path:?}: {e}");
        std::process::exit(2);
    }
    TraceGuard { path: Some(path) }
}

/// A simple aligned text table with an optional CSV mirror.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        render(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the text table to stdout and, when `CHEBYMC_CSV_DIR` is set,
    /// writes `<dir>/<name>.csv` as well — creating the directory if
    /// needed, and exiting with status 2 when the CSV cannot be written.
    /// An explicitly requested export that silently fails would leave a
    /// long experiment with no artefact.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_text());
        if let Ok(dir) = std::env::var("CHEBYMC_CSV_DIR") {
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("error: could not create CHEBYMC_CSV_DIR {dir:?}: {e}");
                std::process::exit(2);
            }
            let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!("(csv written to {})", path.display());
        }
    }
}

/// Formats a probability as a percentage with two decimals, matching the
/// paper's table style.
pub fn pct(p: f64) -> String {
    format!("{:.2}", p * 100.0)
}

/// Formats a cycle count in engineering notation like the paper's Table I
/// (`2.3e2`).
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = x / 10f64.powi(exp);
    format!("{mantissa:.1}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(vec!["longer-name".to_string()]); // padded
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].contains("name"));
        assert!(text.contains("longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn pct_and_eng_formats() {
        assert_eq!(pct(0.5022), "50.22");
        assert_eq!(pct(0.0), "0.00");
        assert_eq!(eng(230.0), "2.3e2");
        assert_eq!(eng(1.0e10), "1.0e10");
        assert_eq!(eng(0.0), "0");
    }

    #[test]
    fn scale_defaults() {
        // Without env overrides the defaults hold.
        if std::env::var("CHEBYMC_SETS").is_err() {
            assert_eq!(task_sets_per_point(), 200);
        }
        if std::env::var("CHEBYMC_SAMPLES").is_err() {
            assert_eq!(samples_per_benchmark(), 20_000);
        }
    }

    #[test]
    fn scale_parsing_rejects_garbage_instead_of_defaulting() {
        assert_eq!(parse_scale("CHEBYMC_SETS", None, 200), Ok(200));
        assert_eq!(parse_scale("CHEBYMC_SETS", Some("1000"), 200), Ok(1000));
        assert_eq!(parse_scale("CHEBYMC_SETS", Some(" 50 "), 200), Ok(50));
        for bad in ["", "0", "-3", "many", "1e3", "200.0"] {
            let err = parse_scale("CHEBYMC_SETS", Some(bad), 200).unwrap_err();
            assert!(err.contains("CHEBYMC_SETS"), "{err}");
            assert!(err.contains("positive integer"), "{err}");
        }
    }
}
