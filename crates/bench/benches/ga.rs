//! Criterion benchmark: genetic-algorithm cost vs population size and
//! chromosome length (supports the DESIGN.md ablation of GA scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_opt::ga::{optimize, GaConfig, GeneBounds};
use std::hint::black_box;

fn sphere(c: &[f64]) -> f64 {
    -c.iter().map(|x| (x - 1.0).powi(2)).sum::<f64>()
}

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_population");
    let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); 8];
    for &pop in &[16usize, 64, 256] {
        let cfg = GaConfig {
            population_size: pop,
            generations: 40,
            ..GaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(pop), &cfg, |b, cfg| {
            b.iter(|| black_box(optimize(&bounds, sphere, cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_dimension_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_dimension");
    for &dim in &[2usize, 8, 32, 128] {
        let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); dim];
        let cfg = GaConfig {
            population_size: 64,
            generations: 20,
            ..GaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(dim), &bounds, |b, bounds| {
            b.iter(|| black_box(optimize(bounds, sphere, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population_scaling, bench_dimension_scaling);
criterion_main!(benches);
