//! Criterion benchmark: genetic-algorithm cost vs population size,
//! chromosome length, and thread count (supports the DESIGN.md ablation
//! of GA scale and the parallel hot-path speedup in `BENCH_ga.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_opt::ga::{optimize, GaConfig, GeneBounds};
use mc_opt::{ProblemConfig, WcetProblem};
use mc_task::generate::{generate_hc_taskset, GeneratorConfig};
use rand::SeedableRng;
use std::hint::black_box;

fn sphere(c: &[f64]) -> f64 {
    -c.iter().map(|x| (x - 1.0).powi(2)).sum::<f64>()
}

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_population");
    let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); 8];
    for &pop in &[16usize, 64, 256] {
        let cfg = GaConfig {
            population_size: pop,
            generations: 40,
            ..GaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(pop), &cfg, |b, cfg| {
            b.iter(|| black_box(optimize(&bounds, sphere, cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_dimension_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_dimension");
    for &dim in &[2usize, 8, 32, 128] {
        let bounds = vec![GeneBounds::new(0.0, 10.0).unwrap(); dim];
        let cfg = GaConfig {
            population_size: 64,
            generations: 20,
            ..GaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(dim), &bounds, |b, bounds| {
            b.iter(|| black_box(optimize(bounds, sphere, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // The real WCET problem (`solve_ga`), not a synthetic surface:
    // threads = 1 is the serial reference, 0 uses every available core.
    // Results are bit-identical either way; only wall-clock may differ.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ts = generate_hc_taskset(0.7, &GeneratorConfig::default(), &mut rng).unwrap();
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap();
    let mut group = c.benchmark_group("ga_threads");
    for &threads in &[1usize, 0] {
        let cfg = GaConfig {
            threads,
            ..GaConfig::default()
        };
        let label = if threads == 0 { "all" } else { "1" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(problem.solve_ga(cfg).unwrap()))
        });
    }
    group.finish();
}

// An expensive multi-modal fitness where parallel evaluation dominates
// the serial variation phase even at small populations.
fn bench_expensive_fitness(c: &mut Criterion) {
    let bounds = vec![GeneBounds::new(-5.0, 5.0).unwrap(); 16];
    let heavy = |ch: &[f64]| {
        let mut acc = 0.0;
        for _ in 0..50 {
            acc -= ch.iter().map(|x| x * x - (x * 7.0).cos()).sum::<f64>();
        }
        acc / 50.0
    };
    let mut group = c.benchmark_group("ga_threads_heavy");
    for &threads in &[1usize, 0] {
        let cfg = GaConfig {
            population_size: 64,
            generations: 20,
            threads,
            ..GaConfig::default()
        };
        let label = if threads == 0 { "all" } else { "1" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(optimize(&bounds, heavy, cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_population_scaling,
    bench_dimension_scaling,
    bench_thread_scaling,
    bench_expensive_fitness
);
criterion_main!(benches);
