//! Criterion benchmark: end-to-end design cost of the Chebyshev scheme as
//! the task-set size grows — the "how long does the offline phase take"
//! question a deployer would ask.

use chebymc_core::scheme::ChebyshevScheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_opt::GaConfig;
use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_design");
    group.sample_size(10);
    for &u in &[0.3, 0.6, 0.9] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ts = generate_mixed_taskset(u, &GeneratorConfig::default(), &mut rng).unwrap();
        let scheme = ChebyshevScheme {
            ga: GaConfig {
                population_size: 48,
                generations: 40,
                ..GaConfig::default()
            },
            problem: Default::default(),
        };
        group.bench_with_input(
            BenchmarkId::new("ga_design", format!("u{u}_tasks{}", ts.len())),
            &ts,
            |b, ts| {
                b.iter(|| {
                    let mut copy = ts.clone();
                    black_box(scheme.design(&mut copy).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_uniform_design(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let ts = generate_mixed_taskset(0.7, &GeneratorConfig::default(), &mut rng).unwrap();
    let scheme = ChebyshevScheme::new();
    c.bench_function("scheme_design_uniform_n10", |b| {
        b.iter(|| {
            let mut copy = ts.clone();
            black_box(scheme.design_uniform(&mut copy, 10.0).unwrap())
        })
    });
}

criterion_group!(benches, bench_design, bench_uniform_design);
criterion_main!(benches);
