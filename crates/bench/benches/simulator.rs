//! Criterion benchmark: discrete-event simulator throughput (simulated
//! seconds per wall-clock second) across execution models and LC policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_sched::sim::{simulate, JobExecModel, LcPolicy, ModeSwitchPolicy, SimConfig};
use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
use mc_task::time::Duration;
use rand::SeedableRng;
use std::hint::black_box;

fn workload() -> mc_task::TaskSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut ts = generate_mixed_taskset(0.8, &GeneratorConfig::default(), &mut rng).unwrap();
    // Use optimistic budgets at 40 % so overruns occur under Profile.
    for t in ts.hc_tasks_mut() {
        let c = t.c_hi().mul_f64(0.4).max(Duration::from_nanos(1));
        t.set_c_lo(c).unwrap();
    }
    ts
}

fn bench_exec_models(c: &mut Criterion) {
    let ts = workload();
    let mut group = c.benchmark_group("simulator_exec_model");
    for (name, model) in [
        ("full_lo", JobExecModel::FullLoBudget),
        ("full_hi", JobExecModel::FullHiBudget),
        ("profile", JobExecModel::Profile),
        ("overrun_p10", JobExecModel::OverrunWithProbability(0.1)),
    ] {
        let cfg = SimConfig {
            horizon: Duration::from_secs(10),
            lc_policy: LcPolicy::DropAll,
            exec_model: model,
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate(&ts, cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_lc_policies(c: &mut Criterion) {
    let ts = workload();
    let mut group = c.benchmark_group("simulator_lc_policy");
    for (name, policy) in [
        ("drop_all", LcPolicy::DropAll),
        ("degrade_50", LcPolicy::Degrade(0.5)),
    ] {
        let cfg = SimConfig {
            horizon: Duration::from_secs(10),
            lc_policy: policy,
            exec_model: JobExecModel::Profile,
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate(&ts, cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_multi_level(c: &mut Criterion) {
    use mc_sched::sim::{simulate_multi, MultiExecModel, MultiSimConfig};
    use mc_task::multi::{MultiTask, MultiTaskSet};
    use mc_task::TaskId;
    let ms = Duration::from_millis;
    let mut ts = MultiTaskSet::new(3).unwrap();
    ts.push(
        MultiTask::new(
            TaskId::new(0),
            "a",
            2,
            vec![ms(5), ms(10), ms(40)],
            ms(100),
            None,
        )
        .unwrap(),
    )
    .unwrap();
    ts.push(MultiTask::new(TaskId::new(1), "b", 1, vec![ms(10), ms(20)], ms(100), None).unwrap())
        .unwrap();
    ts.push(MultiTask::new(TaskId::new(2), "c", 0, vec![ms(20)], ms(100), None).unwrap())
        .unwrap();
    let cfg = MultiSimConfig {
        horizon: Duration::from_secs(10),
        exec_model: MultiExecModel::FullTopBudget,
        seed: 1,
    };
    c.bench_function("simulator_multi_level_10s", |b| {
        b.iter(|| black_box(simulate_multi(&ts, &cfg).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_exec_models,
    bench_lc_policies,
    bench_multi_level
);
criterion_main!(benches);
