//! Criterion benchmark: the cheap analytic kernels — EDF-VD tests, the
//! Chebyshev objective, the static WCET analyser, and trace sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_exec::benchmarks;
use mc_opt::{ProblemConfig, WcetProblem};
use mc_sched::analysis::{dbf, edf_vd};
use mc_task::generate::{generate_hc_taskset, generate_mixed_taskset, GeneratorConfig};
use mc_task::Criticality;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_edf_vd(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let ts = generate_hc_taskset(0.8, &GeneratorConfig::default(), &mut rng).unwrap();
    c.bench_function("edf_vd_analyze", |b| {
        b.iter(|| black_box(edf_vd::analyze(&ts)))
    });
}

fn bench_objective(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let ts = generate_hc_taskset(0.8, &GeneratorConfig::default(), &mut rng).unwrap();
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap();
    let factors = vec![5.0; problem.dimension()];
    c.bench_function("eq13_objective", |b| {
        b.iter(|| black_box(problem.objective(&factors)))
    });
}

fn bench_wcet_analyzer(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_wcet");
    for bench in benchmarks::all().unwrap() {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name().to_string()),
            &bench,
            |b, bench| b.iter(|| black_box(bench.analyze().unwrap())),
        );
    }
    group.finish();
}

fn bench_trace_sampling(c: &mut Criterion) {
    let bench = benchmarks::corner().unwrap();
    c.bench_function("sample_trace_20k", |b| {
        b.iter(|| black_box(bench.sample_trace(20_000, 1).unwrap()))
    });
}

fn bench_demand_analysis(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let ts = generate_mixed_taskset(0.9, &GeneratorConfig::default(), &mut rng).unwrap();
    c.bench_function("edf_demand_test_u090", |b| {
        b.iter(|| black_box(dbf::edf_demand_test(&ts, Criticality::Lo, 0).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_edf_vd,
    bench_objective,
    bench_wcet_analyzer,
    bench_trace_sampling,
    bench_demand_analysis
);
criterion_main!(benches);
