//! Differential oracles for the scheduling stack, driven by the
//! `mc-fault` generators and property harness.
//!
//! Two independent implementations are pitted against each other:
//!
//! * the EDF-VD *analysis* (`analysis::edf_vd`, the paper's Eq. 8)
//!   versus the discrete-event *simulator* — whenever the analysis
//!   declares a random task set schedulable, the adversarial
//!   `FullHiBudget` execution model must produce zero HC deadline
//!   misses over full hyperperiods;
//! * the simulator's *empirical* mode-switch rate versus the
//!   Chebyshev/Cantelli *bound* (`mc_stats::chebyshev::one_sided_bound`)
//!   for profiled tasks whose `C_LO = ACET + n·σ` (the paper's Eq. 6).
//!
//! Any disagreement fails with a copy-pasteable reproducing seed.

use std::cell::Cell;

use mc_fault::gen::{mixed_taskset, profiled_hc_task};
use mc_fault::{assert_prop, FaultRng, PropConfig};
use mc_sched::analysis::edf_vd;
use mc_sched::sim::{simulate, JobExecModel, SimConfig};
use mc_stats::chebyshev::one_sided_bound;
use mc_task::TaskSet;

/// The analysis says "schedulable" ⇒ the simulator, running every HC job
/// to its full pessimistic budget (the worst case Eq. 8 certifies), must
/// meet every HC deadline.
#[test]
fn edf_vd_schedulable_implies_no_hc_miss_under_full_hi_budget() {
    let schedulable_cases = Cell::new(0u32);
    assert_prop(
        &PropConfig::named("edf-vd-vs-simulator").cases(300),
        |rng| rng.next_u64(),
        |&scenario| {
            let ts = mixed_taskset(&mut FaultRng::new(scenario));
            let analysis = edf_vd::analyze(&ts);
            if !analysis.schedulable {
                // Nothing certified, nothing to check. Non-vacuity of the
                // whole run is asserted below.
                return Ok(());
            }
            let x = analysis
                .x
                .ok_or("analysis says schedulable but offers no x factor")?;
            let hyperperiod = ts
                .hyperperiod()
                .ok_or("ladder task set must have a hyperperiod")?;
            let mut cfg = SimConfig::new(hyperperiod.saturating_mul(4));
            cfg.exec_model = JobExecModel::FullHiBudget;
            cfg.x_factor = Some(x);
            cfg.seed = scenario;
            let m = simulate(&ts, &cfg).map_err(|e| e.to_string())?;
            if m.hc_deadline_misses != 0 {
                return Err(format!(
                    "analysis certified {analysis:?} but simulation missed \
                     {} HC deadline(s) over {} released HC jobs",
                    m.hc_deadline_misses, m.hc_released
                ));
            }
            schedulable_cases.set(schedulable_cases.get() + 1);
            Ok(())
        },
    );
    assert!(
        schedulable_cases.get() >= 30,
        "oracle is nearly vacuous: only {} of 300 generated sets were schedulable",
        schedulable_cases.get()
    );
}

/// With `C_LO = ACET + n·σ`, Cantelli's inequality bounds the per-job
/// overrun (= mode-switch) probability by `1/(1+n²)` for *any*
/// distribution; the simulator draws from a normal profile, whose tail
/// sits far below that bound, so the empirical switch rate must too.
#[test]
fn empirical_switch_rate_stays_under_the_chebyshev_bound() {
    for n in [2.0_f64, 3.0] {
        let bound = one_sided_bound(n);
        let total_switches = Cell::new(0u64);
        assert_prop(
            &PropConfig::named("switch-rate-vs-cantelli").cases(25),
            |rng| rng.next_u64(),
            |&scenario| {
                let mut rng = FaultRng::new(scenario);
                let task = profiled_hc_task(&mut rng, 0, n);
                let period = task.period();
                let ts = TaskSet::from_tasks(vec![task]).map_err(|e| e.to_string())?;
                let mut cfg = SimConfig::new(period.saturating_mul(600));
                cfg.exec_model = JobExecModel::Profile;
                cfg.seed = scenario;
                let m = simulate(&ts, &cfg).map_err(|e| e.to_string())?;
                if m.hc_released < 500 {
                    return Err(format!("only {} HC jobs released", m.hc_released));
                }
                if m.hc_deadline_misses != 0 {
                    return Err(format!(
                        "slack-heavy single-task set missed {} deadline(s)",
                        m.hc_deadline_misses
                    ));
                }
                let rate = m.switch_rate_per_hc_job();
                if rate > bound {
                    return Err(format!(
                        "empirical switch rate {rate:.4} exceeds the n={n} \
                         Cantelli bound {bound:.4} ({} switches / {} jobs)",
                        m.mode_switches, m.hc_released
                    ));
                }
                total_switches.set(total_switches.get() + m.mode_switches);
                Ok(())
            },
        );
        // Non-vacuity: the normal tail at n·σ is small but not zero, so a
        // healthy run must have observed at least *some* switches.
        assert!(
            total_switches.get() > 0,
            "no mode switch observed across any n={n} case — the exec model \
             is not exercising the overrun path"
        );
    }
}

/// The analysis-side sanity direction: an x factor, when offered, must be
/// a valid deadline-shrinking factor in `(0, 1]` and must keep every
/// virtual deadline within the real one.
#[test]
fn offered_x_factors_are_valid_shrink_factors() {
    assert_prop(
        &PropConfig::named("x-factor-validity").cases(300),
        |rng| rng.next_u64(),
        |&scenario| {
            let ts = mixed_taskset(&mut FaultRng::new(scenario));
            let analysis = edf_vd::analyze(&ts);
            let Some(x) = analysis.x else {
                return Ok(());
            };
            if !(x > 0.0 && x <= 1.0) {
                return Err(format!("x factor {x} outside (0, 1]"));
            }
            for t in ts.iter().filter(|t| t.is_high()) {
                let vd = edf_vd::virtual_deadline(t, x);
                if vd > t.deadline() || vd.is_zero() {
                    return Err(format!(
                        "virtual deadline {vd:?} escapes (0, {:?}] for x={x}",
                        t.deadline()
                    ));
                }
            }
            Ok(())
        },
    );
}
