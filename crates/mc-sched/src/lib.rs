//! Scheduling substrate for the `chebymc` workspace.
//!
//! Three layers:
//!
//! * [`analysis`] — design-time schedulability tests: plain EDF
//!   (Liu–Layland), EDF-VD (Baruah et al., RTNS 2012 — the paper's Eq. 8 and
//!   the `max(U_LC^LO)` bound of Eqs. 11–12), and the degraded-quality
//!   variant (Liu et al., RTSS 2016) used as the second baseline in Fig. 6.
//! * [`sim`] — a discrete-event preemptive uniprocessor simulator of the
//!   paper's §III operational model: EDF-VD dispatching, mode switching on
//!   `C_LO` overrun (system-level or combined task-level/system-level),
//!   LC dropping/degradation, and switch-back when the HC queue drains.
//! * [`policy`] — the [`policy::SchedulingPolicy`] seam pairing each
//!   admission test with the runtime behaviour it certifies, including the
//!   related-work entrants raced by the `policy_arena` campaign.
//!
//! # Example
//!
//! ```
//! use mc_sched::analysis::edf_vd;
//!
//! // Eq. 8 on raw utilisations: U_HC^LO = 0.2, U_HC^HI = 0.6, U_LC^LO = 0.3.
//! assert!(edf_vd::conditions_hold(0.2, 0.6, 0.3));
//! // The LC utilisation the design can hand out (Eqs. 11–12):
//! let m = edf_vd::max_u_lc_lo(0.2, 0.6);
//! assert!(m > 0.6);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod policy;
pub mod sim;

use std::error::Error;
use std::fmt;

/// The simulation-facing name for [`SchedError`]: every error `simulate`
/// can return (invalid config, empty task set, divergence guard) is a
/// `SchedError`, and callers holding a simulator result see it under this
/// alias.
pub type SimError = SchedError;

/// Errors produced by scheduling analyses and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// The simulation configuration is inconsistent.
    InvalidSimConfig {
        /// What was violated.
        reason: &'static str,
    },
    /// Simulation requires at least one task.
    EmptyTaskSet,
    /// The event loop exceeded its safety bound (likely a degenerate
    /// configuration such as nanosecond periods over a long horizon).
    SimulationDiverged,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidSimConfig { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
            SchedError::EmptyTaskSet => write!(f, "cannot simulate an empty task set"),
            SchedError::SimulationDiverged => {
                write!(f, "simulation exceeded its event-count safety bound")
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(SchedError::EmptyTaskSet.to_string().contains("empty"));
        assert!(SchedError::SimulationDiverged
            .to_string()
            .contains("safety bound"));
        let e = SchedError::InvalidSimConfig {
            reason: "horizon must be non-zero",
        };
        assert!(e.to_string().contains("horizon"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedError>();
    }
}
