//! EDF-VD schedulability (Baruah et al., RTNS 2012) — the paper's Eq. 8.
//!
//! EDF-VD schedules HC tasks in LO mode against *virtual deadlines*
//! `x · D` for a shrinking factor `x ∈ (0, 1]`, guaranteeing that when a
//! mode switch occurs, carried-over HC work still meets its real deadline.
//! With `x = U_HC^LO / (1 − U_LC^LO)`, the system is schedulable iff
//! (paper Eq. 8):
//!
//! ```text
//! U_HC^LO + U_LC^LO ≤ 1                                  (LO mode)
//! U_HC^HI + U_HC^LO · U_LC^LO / (1 − U_LC^LO) ≤ 1        (HI mode + switch)
//! ```
//!
//! The second condition is exactly `x · U_LC^LO + U_HC^HI ≤ 1` rewritten.
//! Inverting it for `U_LC^LO` yields the paper's `max(U_LC^LO)` bound
//! (Eqs. 11–12) — the utilisation that can be handed to LC tasks at design
//! time, the quantity the whole optimisation maximises.

use mc_task::time::Duration;
use mc_task::{McTask, TaskSet};
use serde::{Deserialize, Serialize};

/// Tolerance for utilisation comparisons.
const EPS: f64 = 1e-9;

/// Outcome of an EDF-VD schedulability analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdfVdAnalysis {
    /// `U_HC^LO` of the analysed set.
    pub u_hc_lo: f64,
    /// `U_HC^HI` of the analysed set.
    pub u_hc_hi: f64,
    /// `U_LC^LO` of the analysed set.
    pub u_lc_lo: f64,
    /// The deadline-shrinking factor, when one exists.
    pub x: Option<f64>,
    /// Whether both Eq. 8 conditions hold.
    pub schedulable: bool,
}

/// Checks the paper's Eq. 8 on raw utilisations.
///
/// Degenerate cases: `U_LC^LO ≥ 1` leaves no LO-mode room unless the HC
/// demand is zero; `U_HC^LO = 0` reduces the second condition to
/// `U_HC^HI ≤ 1`.
pub fn conditions_hold(u_hc_lo: f64, u_hc_hi: f64, u_lc_lo: f64) -> bool {
    if u_hc_lo + u_lc_lo > 1.0 + EPS {
        return false;
    }
    if u_hc_hi > 1.0 + EPS {
        return false;
    }
    if u_lc_lo >= 1.0 - EPS {
        // First condition already forced u_hc_lo ≈ 0: pure-LC system.
        return u_hc_hi <= EPS;
    }
    u_hc_hi + u_hc_lo * u_lc_lo / (1.0 - u_lc_lo) <= 1.0 + EPS
}

/// The deadline-shrinking factor `x = U_HC^LO / (1 − U_LC^LO)`, or `None`
/// when no valid factor in `(0, 1]` exists.
///
/// A system with no HC demand needs no shrinking; `Some(1.0)` is returned
/// so virtual deadlines degenerate to real ones.
pub fn x_factor(u_hc_lo: f64, u_lc_lo: f64) -> Option<f64> {
    if u_hc_lo <= EPS {
        return Some(1.0);
    }
    if u_lc_lo >= 1.0 - EPS {
        return None;
    }
    let x = u_hc_lo / (1.0 - u_lc_lo);
    if x > 1.0 + EPS {
        None
    } else {
        Some(x.min(1.0))
    }
}

/// The virtual (LO-mode) relative deadline of an HC task: `x · D`, at least
/// one nanosecond. LC tasks keep their real deadline.
pub fn virtual_deadline(task: &McTask, x: f64) -> Duration {
    if task.is_high() {
        task.deadline()
            .mul_f64(x.clamp(0.0, 1.0))
            .max(Duration::from_nanos(1))
    } else {
        task.deadline()
    }
}

/// Runs the full EDF-VD analysis on a task set.
///
/// # Example
///
/// ```
/// use mc_sched::analysis::edf_vd::analyze;
/// use mc_task::{Criticality, McTask, TaskId, TaskSet};
/// use mc_task::time::Duration;
///
/// # fn main() -> Result<(), mc_task::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     McTask::builder(TaskId::new(0))
///         .criticality(Criticality::Hi)
///         .period(Duration::from_millis(100))
///         .c_lo(Duration::from_millis(10))
///         .c_hi(Duration::from_millis(40))
///         .build()?,
///     McTask::builder(TaskId::new(1))
///         .period(Duration::from_millis(100))
///         .c_lo(Duration::from_millis(30))
///         .build()?,
/// ])?;
/// let a = analyze(&ts);
/// assert!(a.schedulable);
/// # Ok(())
/// # }
/// ```
pub fn analyze(ts: &TaskSet) -> EdfVdAnalysis {
    let u_hc_lo = ts.u_hc_lo();
    let u_hc_hi = ts.u_hc_hi();
    let u_lc_lo = ts.u_lc_lo();
    EdfVdAnalysis {
        u_hc_lo,
        u_hc_hi,
        u_lc_lo,
        x: x_factor(u_hc_lo, u_lc_lo),
        schedulable: conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo),
    }
}

/// The paper's `max(U_LC^LO)` (Eqs. 11–12): the largest LC utilisation that
/// keeps Eq. 8 satisfiable given the HC demands, clamped to `[0, 1]`.
///
/// Returns `0.0` when the HC tasks alone are infeasible
/// (`U_HC^HI > 1` or `U_HC^LO > 1`).
pub fn max_u_lc_lo(u_hc_lo: f64, u_hc_hi: f64) -> f64 {
    if u_hc_hi > 1.0 + EPS || u_hc_lo > 1.0 + EPS || u_hc_lo > u_hc_hi + EPS {
        return 0.0;
    }
    // Eq. 11: LO-mode capacity.
    let bound_lo = 1.0 - u_hc_lo;
    // Eq. 12: HI-mode capacity with carry-over, from inverting
    //   u_hc_hi + u_hc_lo·u/(1−u) ≤ 1.
    let bound_hi = if u_hc_lo <= EPS {
        1.0
    } else {
        (1.0 - u_hc_hi) / (1.0 - u_hc_hi + u_hc_lo)
    };
    bound_lo.min(bound_hi).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, McTask, TaskId};

    fn hc(id: u32, c_lo_ms: u64, c_hi_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(c_hi_ms))
            .build()
            .unwrap()
    }

    fn lc(id: u32, c_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_ms))
            .build()
            .unwrap()
    }

    #[test]
    fn eq8_hand_computed_cases() {
        // u_hc_lo=0.2, u_hc_hi=0.6, u_lc_lo=0.3:
        //   0.2+0.3 = 0.5 ≤ 1 ✓ ; 0.6 + 0.2·0.3/0.7 = 0.6857 ≤ 1 ✓
        assert!(conditions_hold(0.2, 0.6, 0.3));
        // u_hc_lo=0.5, u_hc_hi=0.9, u_lc_lo=0.4:
        //   0.9 ≤ 1 but 0.9 + 0.5·0.4/0.6 = 1.233 > 1 ✗
        assert!(!conditions_hold(0.5, 0.9, 0.4));
        // LO-mode overload.
        assert!(!conditions_hold(0.7, 0.8, 0.4));
        // HI-mode overload alone.
        assert!(!conditions_hold(0.1, 1.2, 0.1));
    }

    #[test]
    fn degenerate_pure_lc_system() {
        assert!(conditions_hold(0.0, 0.0, 1.0));
        assert!(!conditions_hold(0.0, 0.5, 1.0));
        assert!(!conditions_hold(0.1, 0.5, 1.0));
    }

    #[test]
    fn degenerate_pure_hc_system() {
        assert!(conditions_hold(0.3, 1.0, 0.0));
        assert!(!conditions_hold(0.3, 1.01, 0.0));
    }

    #[test]
    fn x_factor_matches_baruah() {
        let x = x_factor(0.3, 0.4).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
        assert_eq!(x_factor(0.0, 0.4), Some(1.0));
        assert_eq!(x_factor(0.5, 1.0), None);
        assert_eq!(x_factor(0.7, 0.5), None); // x would be 1.4
    }

    #[test]
    fn virtual_deadlines_shrink_only_hc() {
        let h = hc(0, 10, 40, 100);
        let l = lc(1, 10, 100);
        assert_eq!(virtual_deadline(&h, 0.5), Duration::from_millis(50));
        assert_eq!(virtual_deadline(&l, 0.5), Duration::from_millis(100));
        // Never collapses to zero.
        assert!(virtual_deadline(&h, 0.0) >= Duration::from_nanos(1));
    }

    #[test]
    fn analyze_composes_utilizations() {
        let ts = mc_task::TaskSet::from_tasks(vec![hc(0, 10, 40, 100), lc(1, 30, 100)]).unwrap();
        let a = analyze(&ts);
        assert!((a.u_hc_lo - 0.1).abs() < 1e-12);
        assert!((a.u_hc_hi - 0.4).abs() < 1e-12);
        assert!((a.u_lc_lo - 0.3).abs() < 1e-12);
        assert!(a.schedulable);
        let x = a.x.unwrap();
        assert!((x - 0.1 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn max_u_lc_lo_hand_computed() {
        // Paper Fig. 3b style: u_hc_lo = 0.2, u_hc_hi = 0.8:
        //   Eq. 11 → 0.8 ; Eq. 12 → 0.2/(0.2+0.2) = 0.5 → min = 0.5.
        assert!((max_u_lc_lo(0.2, 0.8) - 0.5).abs() < 1e-12);
        // LO-mode constrained case: u_hc_lo = 0.9, u_hc_hi = 0.95:
        //   Eq. 11 → 0.1 ; Eq. 12 → 0.05/0.95 ≈ 0.0526 → 0.0526.
        assert!((max_u_lc_lo(0.9, 0.95) - 0.05 / 0.95).abs() < 1e-12);
        // Infeasible HC load.
        assert_eq!(max_u_lc_lo(0.5, 1.2), 0.0);
        // No HC tasks: everything can be LC.
        assert_eq!(max_u_lc_lo(0.0, 0.0), 1.0);
    }

    #[test]
    fn max_u_lc_lo_saturates_eq8() {
        // At the bound, Eq. 8 must hold; just above, it must fail.
        for (u_lo, u_hi) in [(0.1, 0.5), (0.3, 0.7), (0.05, 0.9), (0.5, 0.5)] {
            let m = max_u_lc_lo(u_lo, u_hi);
            assert!(conditions_hold(u_lo, u_hi, m), "at bound ({u_lo},{u_hi})");
            if m < 1.0 {
                assert!(
                    !conditions_hold(u_lo, u_hi, m + 1e-6),
                    "above bound ({u_lo},{u_hi})"
                );
            }
        }
    }

    #[test]
    fn lowering_c_lo_raises_max_u_lc_lo() {
        // The core trade-off: smaller optimistic WCETs leave more room for
        // LC tasks.
        let m_tight = max_u_lc_lo(0.1, 0.8);
        let m_loose = max_u_lc_lo(0.4, 0.8);
        assert!(m_tight > m_loose);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn max_u_lc_lo_is_feasible_and_maximal(
                u_hc_lo in 0.0..1.0f64,
                extra in 0.0..1.0f64,
            ) {
                let u_hc_hi = (u_hc_lo + extra).min(1.0);
                let m = max_u_lc_lo(u_hc_lo, u_hc_hi);
                prop_assert!((0.0..=1.0).contains(&m));
                prop_assert!(conditions_hold(u_hc_lo, u_hc_hi, m));
                if m < 1.0 - 1e-6 {
                    prop_assert!(!conditions_hold(u_hc_lo, u_hc_hi, m + 1e-5));
                }
            }

            #[test]
            fn max_u_lc_lo_monotone_in_hc_demand(
                u_hc_lo in 0.0..0.9f64,
                extra in 0.0..0.5f64,
                bump in 0.0..0.05f64,
            ) {
                let u_hc_hi = (u_hc_lo + extra).min(1.0);
                let base = max_u_lc_lo(u_hc_lo, u_hc_hi);
                let more_lo = max_u_lc_lo((u_hc_lo + bump).min(u_hc_hi), u_hc_hi);
                let more_hi = max_u_lc_lo(u_hc_lo, (u_hc_hi + bump).min(1.0));
                prop_assert!(more_lo <= base + 1e-9);
                prop_assert!(more_hi <= base + 1e-9);
            }

            #[test]
            fn x_factor_yields_feasible_lo_schedule(
                u_hc_lo in 0.01..0.9f64,
                u_lc_lo in 0.0..0.9f64,
            ) {
                if let Some(x) = x_factor(u_hc_lo, u_lc_lo) {
                    // The shrunken HC demand plus LC demand fits in LO mode:
                    // u_hc_lo / x + u_lc_lo ≤ 1.
                    prop_assert!(u_hc_lo / x + u_lc_lo <= 1.0 + 1e-6);
                    prop_assert!(x > 0.0 && x <= 1.0);
                }
            }
        }
    }
}
