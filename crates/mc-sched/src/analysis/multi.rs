//! Multi-level EDF-VD schedulability via pairwise reduction.
//!
//! Exact multi-level EDF-VD analysis is an open problem; the standard
//! engineering approach (and the one this workspace takes for the paper's
//! future-work extension) is *pairwise reduction*: for every consecutive
//! mode pair `(k, k+1)` the system is collapsed onto the dual-criticality
//! model — tasks of level `k` play the LC role, tasks above play the HC
//! role with budgets `C(k)`/`C(k+1)` — and the paper's Eq. 8 must hold for
//! each pair. This is **sufficient but conservative**: each escalation step
//! is individually protected by the dual-criticality EDF-VD theorem, with a
//! fresh deadline-shrinking factor applied after each switch.

use crate::analysis::edf_vd;
use mc_task::multi::MultiTaskSet;
use serde::{Deserialize, Serialize};

/// Per-mode-pair reduction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairVerdict {
    /// The lower mode of the pair (`k` of `(k, k+1)`).
    pub mode: usize,
    /// `U_HC^LO` of the reduced dual system.
    pub u_hc_lo: f64,
    /// `U_HC^HI` of the reduced dual system.
    pub u_hc_hi: f64,
    /// `U_LC^LO` of the reduced dual system.
    pub u_lc_lo: f64,
    /// Whether Eq. 8 holds for this pair.
    pub schedulable: bool,
}

/// Outcome of the multi-level analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAnalysis {
    /// One verdict per mode pair `(k, k+1)`, `k = 0..L-1`.
    pub pairs: Vec<PairVerdict>,
    /// Whether every pair passed.
    pub schedulable: bool,
}

/// Runs the pairwise-reduction test on a multi-level task set.
///
/// # Example
///
/// ```
/// use mc_sched::analysis::multi::analyze;
/// use mc_task::multi::{MultiTask, MultiTaskSet};
/// use mc_task::task::TaskId;
/// use mc_task::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ts = MultiTaskSet::new(3)?;
/// ts.push(MultiTask::new(
///     TaskId::new(0), "ctrl", 2,
///     vec![Duration::from_millis(5), Duration::from_millis(10), Duration::from_millis(40)],
///     Duration::from_millis(100), None,
/// )?)?;
/// ts.push(MultiTask::new(
///     TaskId::new(1), "ui", 0,
///     vec![Duration::from_millis(20)],
///     Duration::from_millis(100), None,
/// )?)?;
/// assert!(analyze(&ts).schedulable);
/// # Ok(())
/// # }
/// ```
pub fn analyze(ts: &MultiTaskSet) -> MultiAnalysis {
    let mut pairs = Vec::with_capacity(ts.levels() - 1);
    let mut all = true;
    for k in 0..ts.levels() - 1 {
        let (u_hc_lo, u_hc_hi, u_lc_lo) = ts
            .reduce_to_dual(k)
            .expect("k ranges over valid mode pairs");
        let schedulable = edf_vd::conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo);
        all &= schedulable;
        pairs.push(PairVerdict {
            mode: k,
            u_hc_lo,
            u_hc_hi,
            u_lc_lo,
            schedulable,
        });
    }
    MultiAnalysis {
        pairs,
        schedulable: all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::multi::MultiTask;
    use mc_task::task::TaskId;
    use mc_task::time::Duration;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn task(id: u32, level: usize, budgets_ms: &[u64], period_ms: u64) -> MultiTask {
        MultiTask::new(
            TaskId::new(id),
            "",
            level,
            budgets_ms.iter().map(|&b| ms(b)).collect(),
            ms(period_ms),
            None,
        )
        .unwrap()
    }

    #[test]
    fn lightly_loaded_tri_level_system_passes_every_pair() {
        let mut ts = MultiTaskSet::new(3).unwrap();
        ts.push(task(0, 2, &[5, 10, 40], 100)).unwrap();
        ts.push(task(1, 1, &[10, 20], 100)).unwrap();
        ts.push(task(2, 0, &[20], 100)).unwrap();
        let a = analyze(&ts);
        assert_eq!(a.pairs.len(), 2);
        assert!(a.schedulable);
        assert!(a.pairs.iter().all(|p| p.schedulable));
    }

    #[test]
    fn overload_in_the_top_mode_is_caught() {
        let mut ts = MultiTaskSet::new(3).unwrap();
        // Two top-level tasks whose mode-2 budgets alone exceed the core.
        ts.push(task(0, 2, &[5, 10, 60], 100)).unwrap();
        ts.push(task(1, 2, &[5, 10, 60], 100)).unwrap();
        let a = analyze(&ts);
        assert!(!a.schedulable);
        // pair 0 may legitimately pass either way; only pair 1 is pinned.
        assert!(
            !a.pairs[1].schedulable,
            "pair (1,2) must fail: U_HC^HI = 1.2"
        );
    }

    #[test]
    fn overload_in_a_middle_transition_is_caught() {
        let mut ts = MultiTaskSet::new(3).unwrap();
        // Level-1 demand in mode 1 is huge while mode 2 is fine (the
        // level-1 task is dropped there).
        ts.push(task(0, 1, &[10, 95], 100)).unwrap();
        ts.push(task(1, 2, &[10, 80, 90], 100)).unwrap();
        let a = analyze(&ts);
        // Pair (1,2): LC = level-1 at C(1) = 0.95, HC = 0.8/0.9 → fails.
        assert!(!a.pairs[1].schedulable);
        assert!(!a.schedulable);
    }

    #[test]
    fn two_level_platform_matches_dual_criticality_analysis() {
        // L = 2 must agree exactly with the dual-criticality Eq. 8.
        let mut ts = MultiTaskSet::new(2).unwrap();
        ts.push(task(0, 1, &[20, 50], 100)).unwrap(); // HC: 0.2 / 0.5
        ts.push(task(1, 0, &[30], 100)).unwrap(); // LC: 0.3
        let a = analyze(&ts);
        assert_eq!(a.pairs.len(), 1);
        assert_eq!(a.schedulable, edf_vd::conditions_hold(0.2, 0.5, 0.3));
        assert!(a.schedulable);
    }

    #[test]
    fn tightening_lower_budgets_can_rescue_schedulability() {
        // The core motivation carried to L levels: a system infeasible
        // with pessimistic lower budgets becomes feasible when lower-mode
        // budgets shrink toward the ACET.
        let mut pessimistic = MultiTaskSet::new(3).unwrap();
        pessimistic.push(task(0, 2, &[40, 40, 40], 100)).unwrap();
        pessimistic.push(task(1, 2, &[40, 40, 40], 100)).unwrap();
        pessimistic.push(task(2, 0, &[30], 100)).unwrap();
        assert!(!analyze(&pessimistic).schedulable, "0.8 + 0.3 LO overload");

        let mut tuned = MultiTaskSet::new(3).unwrap();
        tuned.push(task(0, 2, &[5, 10, 40], 100)).unwrap();
        tuned.push(task(1, 2, &[5, 10, 40], 100)).unwrap();
        tuned.push(task(2, 0, &[30], 100)).unwrap();
        assert!(analyze(&tuned).schedulable);
    }
}
