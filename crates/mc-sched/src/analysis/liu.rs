//! Degraded-quality EDF-VD (Liu et al., RTSS 2016).
//!
//! In the imprecise mixed-criticality model, LC tasks are not dropped in HI
//! mode: they continue with a degraded budget `f · C_LO` (the paper's Fig. 6
//! uses `f = 0.5`). The sufficient EDF-VD test generalises Baruah's: with
//! `x = U_HC^LO / (1 − U_LC^LO)`,
//!
//! ```text
//! U_HC^LO + U_LC^LO ≤ 1                                   (LO mode)
//! x · U_LC^LO + (1 − x) · U_LC^HI + U_HC^HI ≤ 1           (HI mode)
//! ```
//!
//! where `U_LC^HI = f · U_LC^LO` is the degraded LC demand. Setting `f = 0`
//! recovers Baruah's drop-all condition exactly.

use mc_task::TaskSet;
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-9;

/// Outcome of a degraded-quality EDF-VD analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiuAnalysis {
    /// `U_HC^LO` of the analysed set.
    pub u_hc_lo: f64,
    /// `U_HC^HI` of the analysed set.
    pub u_hc_hi: f64,
    /// `U_LC^LO` of the analysed set.
    pub u_lc_lo: f64,
    /// Degraded LC demand `f · U_LC^LO`.
    pub u_lc_hi: f64,
    /// The deadline-shrinking factor, when one exists.
    pub x: Option<f64>,
    /// Whether both conditions hold.
    pub schedulable: bool,
}

/// Checks the degraded-quality conditions on raw utilisations with LC
/// degradation factor `degradation ∈ [0, 1]` (fraction of the LC budget
/// retained in HI mode).
///
/// # Panics
///
/// Panics when `degradation` is outside `[0, 1]` or not finite.
pub fn conditions_hold(u_hc_lo: f64, u_hc_hi: f64, u_lc_lo: f64, degradation: f64) -> bool {
    assert!(
        degradation.is_finite() && (0.0..=1.0).contains(&degradation),
        "degradation factor must be in [0, 1]"
    );
    if u_hc_lo + u_lc_lo > 1.0 + EPS || u_hc_hi > 1.0 + EPS {
        return false;
    }
    let u_lc_hi = degradation * u_lc_lo;
    if u_lc_lo >= 1.0 - EPS {
        // Pure-LC system: HI mode must still fit the degraded demand.
        return u_hc_hi + u_lc_hi <= 1.0 + EPS;
    }
    let Some(x) = x_factor(u_hc_lo, u_lc_lo) else {
        return false;
    };
    x * u_lc_lo + (1.0 - x) * u_lc_hi + u_hc_hi <= 1.0 + EPS
}

/// The deadline-shrinking factor the degraded-quality HI-mode condition
/// actually applies: `x = U_HC^LO / (1 − U_LC^LO)`, and `0` when there is
/// no HC demand (the condition then weighs the degraded LC demand alone —
/// unlike [`super::edf_vd::x_factor`], which reports `1.0` there because
/// Baruah's rewritten condition has no `(1 − x)` term).
///
/// Returns `None` in the pure-LC regime (`U_LC^LO ≥ 1`, where the test
/// uses no factor) and when the factor would exceed `1` (where the test
/// rejects outright) — exactly the branches of [`conditions_hold`].
pub fn x_factor(u_hc_lo: f64, u_lc_lo: f64) -> Option<f64> {
    if u_lc_lo >= 1.0 - EPS {
        return None;
    }
    if u_hc_lo <= EPS {
        return Some(0.0);
    }
    let x = u_hc_lo / (1.0 - u_lc_lo);
    if x > 1.0 + EPS {
        None
    } else {
        Some(x.min(1.0))
    }
}

/// Runs the degraded-quality analysis on a task set.
pub fn analyze(ts: &TaskSet, degradation: f64) -> LiuAnalysis {
    let u_hc_lo = ts.u_hc_lo();
    let u_hc_hi = ts.u_hc_hi();
    let u_lc_lo = ts.u_lc_lo();
    LiuAnalysis {
        u_hc_lo,
        u_hc_hi,
        u_lc_lo,
        u_lc_hi: degradation * u_lc_lo,
        x: x_factor(u_hc_lo, u_lc_lo),
        schedulable: conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo, degradation),
    }
}

/// The largest LC utilisation admissible under the degraded-quality test
/// given the HC demands (the Liu-analogue of the paper's Eqs. 11–12),
/// computed by bisection over the closed-form conditions.
///
/// # Panics
///
/// Panics when `degradation` is outside `[0, 1]` or not finite.
pub fn max_u_lc_lo(u_hc_lo: f64, u_hc_hi: f64, degradation: f64) -> f64 {
    assert!(
        degradation.is_finite() && (0.0..=1.0).contains(&degradation),
        "degradation factor must be in [0, 1]"
    );
    if degradation == 0.0 {
        // With no retained LC service the HI-mode condition is exactly
        // Baruah's; reuse the closed form so `f = 0` agrees bit-for-bit
        // with `edf_vd::max_u_lc_lo` instead of to bisection tolerance.
        return super::edf_vd::max_u_lc_lo(u_hc_lo, u_hc_hi);
    }
    if !conditions_hold(u_hc_lo, u_hc_hi, 0.0, degradation) {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    if conditions_hold(u_hc_lo, u_hc_hi, 1.0, degradation) {
        return 1.0;
    }
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if conditions_hold(u_hc_lo, u_hc_hi, mid, degradation) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, McTask, TaskId};

    #[test]
    fn zero_degradation_recovers_baruah() {
        for (a, b, c) in [
            (0.2, 0.6, 0.3),
            (0.5, 0.9, 0.4),
            (0.1, 0.95, 0.2),
            (0.0, 0.0, 0.99),
        ] {
            assert_eq!(
                conditions_hold(a, b, c, 0.0),
                super::super::edf_vd::conditions_hold(a, b, c),
                "({a},{b},{c})"
            );
        }
    }

    #[test]
    fn degradation_only_tightens() {
        // Anything schedulable with f = 0.5 must be schedulable with f = 0.
        for (a, b, c) in [(0.2, 0.6, 0.3), (0.3, 0.7, 0.25), (0.1, 0.8, 0.15)] {
            if conditions_hold(a, b, c, 0.5) {
                assert!(conditions_hold(a, b, c, 0.0));
            }
        }
        // A concrete case separated by degradation: HI mode nearly full.
        assert!(conditions_hold(0.2, 0.85, 0.3, 0.0));
        assert!(!conditions_hold(0.2, 0.85, 0.3, 1.0));
    }

    #[test]
    fn hand_computed_case() {
        // u_hc_lo=0.2, u_hc_hi=0.6, u_lc_lo=0.3, f=0.5:
        //   x = 0.2/0.7 = 0.2857
        //   0.2857·0.3 + 0.7143·0.15 + 0.6 = 0.0857+0.1071+0.6 = 0.7929 ≤ 1 ✓
        assert!(conditions_hold(0.2, 0.6, 0.3, 0.5));
        // Push HI demand: u_hc_hi = 0.92 → 0.0857+0.1071+0.92 = 1.11 ✗
        assert!(!conditions_hold(0.2, 0.92, 0.3, 0.5));
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn invalid_degradation_panics() {
        let _ = conditions_hold(0.1, 0.2, 0.1, 1.5);
    }

    #[test]
    fn max_u_lc_lo_is_feasible_boundary() {
        for (u_lo, u_hi) in [(0.1, 0.5), (0.3, 0.7), (0.2, 0.9)] {
            for f in [0.0, 0.5, 1.0] {
                let m = max_u_lc_lo(u_lo, u_hi, f);
                assert!(conditions_hold(u_lo, u_hi, m, f), "({u_lo},{u_hi},{f})");
                if m < 1.0 - 1e-9 {
                    assert!(
                        !conditions_hold(u_lo, u_hi, m + 1e-6, f),
                        "({u_lo},{u_hi},{f})"
                    );
                }
            }
        }
    }

    #[test]
    fn max_u_lc_lo_zero_when_hc_infeasible() {
        assert_eq!(max_u_lc_lo(0.5, 1.1, 0.5), 0.0);
    }

    #[test]
    fn max_u_lc_lo_one_for_empty_hc() {
        assert!((max_u_lc_lo(0.0, 0.0, 0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn x_factor_matches_conditions_at_zero_hc() {
        // Regression: `analyze` used to report `edf_vd::x_factor` —
        // `Some(1.0)` when `u_hc_lo ≤ EPS` — while `conditions_hold`
        // tested `x = 0` for the same inputs.
        assert_eq!(x_factor(0.0, 0.3), Some(0.0));
        assert_eq!(super::super::edf_vd::x_factor(0.0, 0.3), Some(1.0));

        let ts = mc_task::TaskSet::from_tasks(vec![
            McTask::builder(TaskId::new(0))
                .period(Duration::from_millis(100))
                .c_lo(Duration::from_millis(30))
                .build()
                .unwrap(),
            McTask::builder(TaskId::new(1))
                .period(Duration::from_millis(50))
                .c_lo(Duration::from_millis(20))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let a = analyze(&ts, 0.5);
        assert_eq!(a.x, Some(0.0));
        assert!(a.schedulable);
        // The reported factor reproduces the HI-mode condition verdict.
        let x = a.x.unwrap();
        assert!(x * a.u_lc_lo + (1.0 - x) * a.u_lc_hi + a.u_hc_hi <= 1.0 + 1e-9);
    }

    #[test]
    fn x_factor_pure_lc_and_overload_edges() {
        // Pure-LC regime: the test uses no factor.
        assert_eq!(x_factor(0.0, 1.0), None);
        // Factor above 1 is rejected, matching `conditions_hold`.
        assert_eq!(x_factor(0.3, 0.8), None);
        assert!(!conditions_hold(0.3, 0.4, 0.8, 0.5));

        // A fully-utilised pure-LC set is schedulable under degradation
        // and reports no shrinking factor.
        let ts = mc_task::TaskSet::from_tasks(vec![McTask::builder(TaskId::new(0))
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(100))
            .build()
            .unwrap()])
        .unwrap();
        let a = analyze(&ts, 0.5);
        assert_eq!(a.x, None);
        assert!(a.schedulable);
    }

    #[test]
    fn zero_degradation_max_u_lc_lo_delegates_to_closed_form() {
        for (a, b) in [(0.2, 0.8), (0.9, 0.95), (0.0, 0.0), (0.5, 1.2)] {
            let m = max_u_lc_lo(a, b, 0.0);
            let e = super::super::edf_vd::max_u_lc_lo(a, b);
            assert_eq!(m.to_bits(), e.to_bits(), "({a},{b})");
        }
    }

    #[test]
    fn analyze_composes() {
        let ts = mc_task::TaskSet::from_tasks(vec![
            McTask::builder(TaskId::new(0))
                .criticality(Criticality::Hi)
                .period(Duration::from_millis(100))
                .c_lo(Duration::from_millis(20))
                .c_hi(Duration::from_millis(60))
                .build()
                .unwrap(),
            McTask::builder(TaskId::new(1))
                .period(Duration::from_millis(100))
                .c_lo(Duration::from_millis(30))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let a = analyze(&ts, 0.5);
        assert!((a.u_lc_hi - 0.15).abs() < 1e-12);
        assert!(a.schedulable);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn liu_at_most_as_permissive_as_baruah(
                u_hc_lo in 0.0..1.0f64,
                extra in 0.0..1.0f64,
                u_lc_lo in 0.0..1.0f64,
                f in 0.0..=1.0f64,
            ) {
                let u_hc_hi = (u_hc_lo + extra).min(1.0);
                if conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo, f) {
                    prop_assert!(super::super::super::edf_vd::conditions_hold(
                        u_hc_lo, u_hc_hi, u_lc_lo
                    ));
                }
            }

            #[test]
            fn max_u_lc_lo_decreases_with_degradation(
                u_hc_lo in 0.0..0.8f64,
                extra in 0.0..0.2f64,
                f1 in 0.0..=1.0f64,
                f2 in 0.0..=1.0f64,
            ) {
                let u_hc_hi = (u_hc_lo + extra).min(1.0);
                let (fa, fb) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
                let ma = max_u_lc_lo(u_hc_lo, u_hc_hi, fa);
                let mb = max_u_lc_lo(u_hc_lo, u_hc_hi, fb);
                prop_assert!(mb <= ma + 1e-6);
            }

            /// The bisection boundary agrees with `conditions_hold`:
            /// the conditions are downward-closed in `u_lc_lo`, hold
            /// strictly below `max_u_lc_lo` and fail strictly above it.
            #[test]
            fn max_u_lc_lo_is_the_conditions_flip_point(
                u_hc_lo in 0.0..0.9f64,
                extra in 0.0..0.5f64,
                f in 0.0..=1.0f64,
                u in 0.0..1.0f64,
            ) {
                let u_hc_hi = (u_hc_lo + extra).min(1.0);
                let m = max_u_lc_lo(u_hc_lo, u_hc_hi, f);
                if u < m - 1e-6 {
                    prop_assert!(
                        conditions_hold(u_hc_lo, u_hc_hi, u, f),
                        "below flip: u={u} m={m}"
                    );
                }
                if u > m + 1e-6 {
                    prop_assert!(
                        !conditions_hold(u_hc_lo, u_hc_hi, u, f),
                        "above flip: u={u} m={m}"
                    );
                }
            }

            /// `degradation = 0` reproduces the paper's closed-form
            /// `max(U_LC^LO)` (edf_vd Eqs. 11–12) bit-for-bit.
            #[test]
            fn zero_degradation_max_matches_edf_vd_exactly(
                u_hc_lo in 0.0..1.0f64,
                extra in 0.0..1.0f64,
            ) {
                let u_hc_hi = (u_hc_lo + extra).min(1.0);
                let m = max_u_lc_lo(u_hc_lo, u_hc_hi, 0.0);
                let e = super::super::super::edf_vd::max_u_lc_lo(u_hc_lo, u_hc_hi);
                prop_assert_eq!(m.to_bits(), e.to_bits());
            }
        }
    }
}
