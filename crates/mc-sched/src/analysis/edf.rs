//! Plain EDF schedulability (Liu–Layland).
//!
//! On a preemptive uniprocessor, implicit-deadline periodic tasks are
//! EDF-schedulable if and only if their total utilisation is at most one.
//! This is the non-MC baseline: every task budgeted at its pessimistic
//! WCET, no mode switching — the design the paper's Fig. 1 motivates
//! against.

use mc_task::TaskSet;

/// Liu–Layland: a utilisation is feasible on a unit-speed uniprocessor iff
/// it is at most 1 (within `f64` tolerance).
pub fn utilization_feasible(total_utilization: f64) -> bool {
    total_utilization <= 1.0 + 1e-9
}

/// EDF-schedulability of a task set with every task budgeted at its
/// *pessimistic* WCET (conventional single-criticality design).
///
/// # Example
///
/// ```
/// use mc_sched::analysis::edf::schedulable_pessimistic;
/// use mc_task::{McTask, TaskId, TaskSet};
/// use mc_task::time::Duration;
///
/// # fn main() -> Result<(), mc_task::TaskError> {
/// let ts = TaskSet::from_tasks(vec![McTask::builder(TaskId::new(0))
///     .period(Duration::from_millis(10))
///     .c_lo(Duration::from_millis(5))
///     .build()?])?;
/// assert!(schedulable_pessimistic(&ts));
/// # Ok(())
/// # }
/// ```
pub fn schedulable_pessimistic(ts: &TaskSet) -> bool {
    let total: f64 = ts.iter().map(|t| t.u_hi()).sum();
    utilization_feasible(total)
}

/// EDF-schedulability with every task budgeted at its LO-mode WCET
/// (optimistic design with no HI-mode safety net).
pub fn schedulable_optimistic(ts: &TaskSet) -> bool {
    utilization_feasible(ts.u_total_lo())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, McTask, TaskId, TaskSet};

    fn hc(id: u32, c_lo_ms: u64, c_hi_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(c_hi_ms))
            .build()
            .unwrap()
    }

    #[test]
    fn utilization_boundary() {
        assert!(utilization_feasible(0.0));
        assert!(utilization_feasible(1.0));
        assert!(!utilization_feasible(1.01));
    }

    #[test]
    fn pessimistic_test_uses_c_hi() {
        // u_hi = 0.6 + 0.5 > 1 but u_lo = 0.1 + 0.1 <= 1.
        let ts = TaskSet::from_tasks(vec![hc(0, 10, 60, 100), hc(1, 10, 50, 100)]).unwrap();
        assert!(!schedulable_pessimistic(&ts));
        assert!(schedulable_optimistic(&ts));
    }

    #[test]
    fn empty_set_is_trivially_schedulable() {
        let ts = TaskSet::new();
        assert!(schedulable_pessimistic(&ts));
        assert!(schedulable_optimistic(&ts));
    }
}
