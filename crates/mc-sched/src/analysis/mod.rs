//! Schedulability analysis for uniprocessor mixed-criticality systems.
//!
//! * [`edf`] — the Liu–Layland utilisation bound for plain EDF.
//! * [`edf_vd`] — EDF-VD (Baruah et al., RTNS 2012): the paper's Eq. 8
//!   conditions, the deadline-shrinking factor `x`, virtual deadlines, and
//!   the `max(U_LC^LO)` bound of Eqs. 11–12.
//! * [`liu`] — the degraded-quality variant (Liu et al., RTSS 2016) where
//!   LC tasks keep a fraction of their budget in HI mode.

pub mod dbf;
pub mod edf;
pub mod edf_vd;
pub mod liu;
pub mod multi;

pub use edf_vd::{max_u_lc_lo, EdfVdAnalysis};
