//! Processor-demand analysis (demand bound functions) for EDF.
//!
//! The utilisation tests in [`super::edf`] and [`super::edf_vd`] are exact
//! only for implicit deadlines. [`McTask`] also admits *constrained*
//! deadlines (`D < P`), for which the exact uniprocessor EDF test is the
//! processor-demand criterion (Baruah, Rosier & Howell):
//!
//! ```text
//! ∀ t > 0 :  dbf(t) = Σᵢ max(0, ⌊(t − Dᵢ)/Pᵢ⌋ + 1) · Cᵢ  ≤  t
//! ```
//!
//! It suffices to check `t` at absolute-deadline points up to
//! `L = min(L_a, L_b)` where `L_a` is the Baruah bound and `L_b` the
//! synchronous busy-period length. This module provides the dbf itself and
//! the bounded exact test, used in the workspace both as a second opinion
//! on the utilisation tests and to validate designs with shortened
//! (virtual) deadlines.

use crate::SchedError;
use mc_task::time::Duration;
use mc_task::{Criticality, McTask, TaskSet};
use serde::{Deserialize, Serialize};

/// Demand bound of one task over an interval of length `t`: the maximum
/// execution demand of jobs released *and* due within any window of that
/// length, using the task's WCET at `mode`.
pub fn task_dbf(task: &McTask, t: Duration, mode: Criticality) -> Duration {
    if t < task.deadline() {
        return Duration::ZERO;
    }
    let jobs = (t - task.deadline()).as_nanos() / task.period().as_nanos() + 1;
    task.wcet(mode).saturating_mul(jobs)
}

/// Total demand bound of a task set over an interval of length `t`.
pub fn dbf(ts: &TaskSet, t: Duration, mode: Criticality) -> Duration {
    ts.iter()
        .fold(Duration::ZERO, |acc, task| acc + task_dbf(task, t, mode))
}

/// Result of the exact processor-demand test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandAnalysis {
    /// Whether `dbf(t) ≤ t` held at every checked point.
    pub schedulable: bool,
    /// The first violating instant, when one exists.
    pub violation_at: Option<Duration>,
    /// The horizon up to which points were checked.
    pub horizon: Duration,
    /// How many deadline points were checked.
    pub points_checked: u64,
}

/// Exact EDF schedulability of `ts` (budgets at `mode`) via processor
/// demand, checking all absolute-deadline points up to the Baruah/busy
/// period bound.
///
/// # Errors
///
/// Returns [`SchedError::EmptyTaskSet`] for an empty set and
/// [`SchedError::SimulationDiverged`] when the number of check points
/// exceeds `max_points` (degenerate period ratios); `max_points = 0` means
/// the default of 1 000 000.
pub fn edf_demand_test(
    ts: &TaskSet,
    mode: Criticality,
    max_points: u64,
) -> Result<DemandAnalysis, SchedError> {
    if ts.is_empty() {
        return Err(SchedError::EmptyTaskSet);
    }
    let max_points = if max_points == 0 {
        1_000_000
    } else {
        max_points
    };
    let total_u: f64 = ts.iter().map(|t| t.utilization(mode)).sum();
    if total_u > 1.0 + 1e-9 {
        // Demand grows without bound; report the necessary-condition
        // violation at the hyper-scale horizon.
        return Ok(DemandAnalysis {
            schedulable: false,
            violation_at: None,
            horizon: Duration::ZERO,
            points_checked: 0,
        });
    }

    // Baruah bound L_a = max(Dᵢ, Σ (Pᵢ − Dᵢ)·uᵢ / (1 − U)).
    let max_deadline = ts
        .iter()
        .map(|t| t.deadline())
        .max()
        .expect("non-empty set");
    let la = if total_u >= 1.0 - 1e-9 {
        // U = 1 exactly: fall back to the busy period / hyperperiod bound.
        Duration::MAX
    } else {
        let num: f64 = ts
            .iter()
            .map(|t| {
                (t.period()
                    .as_nanos()
                    .saturating_sub(t.deadline().as_nanos())) as f64
                    * t.utilization(mode)
            })
            .sum();
        let bound = num / (1.0 - total_u);
        Duration::try_from_nanos_f64_ceil(bound).unwrap_or(Duration::MAX)
    }
    .max(max_deadline);

    // Synchronous busy period L_b: w ← Σ ⌈w/Pᵢ⌉·Cᵢ to fixpoint.
    let mut w = ts.iter().fold(Duration::ZERO, |acc, t| acc + t.wcet(mode));
    let lb = loop {
        let next = ts.iter().fold(Duration::ZERO, |acc, t| {
            let jobs = w.as_nanos().div_ceil(t.period().as_nanos()).max(1);
            acc + t.wcet(mode).saturating_mul(jobs)
        });
        if next == w {
            break w;
        }
        if next < w {
            break next;
        }
        w = next;
        if w == Duration::MAX {
            break w;
        }
    };
    let horizon = la.min(lb).min(ts.hyperperiod().unwrap_or(Duration::MAX));

    // Enumerate absolute deadlines d = k·P + D ≤ horizon, merged and
    // deduplicated on the fly via a simple per-task cursor sweep.
    let mut cursors: Vec<(Duration, &McTask)> = ts.iter().map(|t| (t.deadline(), t)).collect();
    let mut checked = 0u64;
    while let Some((next_d, _)) = cursors
        .iter()
        .filter(|(d, _)| *d <= horizon)
        .min_by_key(|(d, _)| *d)
        .copied()
    {
        checked += 1;
        if checked > max_points {
            return Err(SchedError::SimulationDiverged);
        }
        let demand = dbf(ts, next_d, mode);
        if demand > next_d {
            return Ok(DemandAnalysis {
                schedulable: false,
                violation_at: Some(next_d),
                horizon,
                points_checked: checked,
            });
        }
        // Advance every cursor sitting at this deadline.
        for (d, t) in cursors.iter_mut() {
            if *d == next_d {
                *d += t.period();
            }
        }
    }
    Ok(DemandAnalysis {
        schedulable: true,
        violation_at: None,
        horizon,
        points_checked: checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::task::TaskId;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn task(id: u32, c_ms: u64, d_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .period(ms(p_ms))
            .deadline(ms(d_ms))
            .c_lo(ms(c_ms))
            .build()
            .unwrap()
    }

    #[test]
    fn single_task_dbf_steps_at_deadlines() {
        let t = task(0, 2, 5, 10);
        assert_eq!(task_dbf(&t, ms(4), Criticality::Lo), Duration::ZERO);
        assert_eq!(task_dbf(&t, ms(5), Criticality::Lo), ms(2));
        assert_eq!(task_dbf(&t, ms(14), Criticality::Lo), ms(2));
        assert_eq!(task_dbf(&t, ms(15), Criticality::Lo), ms(4));
        assert_eq!(task_dbf(&t, ms(25), Criticality::Lo), ms(6));
    }

    #[test]
    fn implicit_deadline_test_matches_liu_layland() {
        // U = 0.9 implicit: schedulable.
        let ts = TaskSet::from_tasks(vec![task(0, 45, 100, 100), task(1, 90, 200, 200)]).unwrap();
        let a = edf_demand_test(&ts, Criticality::Lo, 0).unwrap();
        assert!(a.schedulable);
        assert!(a.points_checked > 0);

        // U = 1.05: infeasible by the necessary condition.
        let ts = TaskSet::from_tasks(vec![task(0, 55, 100, 100), task(1, 100, 200, 200)]).unwrap();
        let a = edf_demand_test(&ts, Criticality::Lo, 0).unwrap();
        assert!(!a.schedulable);
    }

    #[test]
    fn constrained_deadlines_can_fail_despite_low_utilization() {
        // Two tasks, U = 0.6, but both demand 30 ms within their first
        // 30 ms deadline window: dbf(30) = 60 > 30.
        let ts = TaskSet::from_tasks(vec![task(0, 30, 30, 100), task(1, 30, 30, 100)]).unwrap();
        let a = edf_demand_test(&ts, Criticality::Lo, 0).unwrap();
        assert!(!a.schedulable);
        assert_eq!(a.violation_at, Some(ms(30)));
    }

    #[test]
    fn constrained_deadlines_can_pass_when_demand_fits() {
        let ts = TaskSet::from_tasks(vec![task(0, 10, 30, 100), task(1, 15, 40, 100)]).unwrap();
        let a = edf_demand_test(&ts, Criticality::Lo, 0).unwrap();
        assert!(a.schedulable);
    }

    #[test]
    fn hi_mode_budgets_are_used_when_requested() {
        let t = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(ms(100))
            .c_lo(ms(10))
            .c_hi(ms(60))
            .build()
            .unwrap();
        let pair = McTask::builder(TaskId::new(1))
            .criticality(Criticality::Hi)
            .period(ms(100))
            .c_lo(ms(10))
            .c_hi(ms(60))
            .build()
            .unwrap();
        let ts = TaskSet::from_tasks(vec![t, pair]).unwrap();
        assert!(
            edf_demand_test(&ts, Criticality::Lo, 0)
                .unwrap()
                .schedulable
        );
        // 120 ms demand per 100 ms in HI mode.
        assert!(
            !edf_demand_test(&ts, Criticality::Hi, 0)
                .unwrap()
                .schedulable
        );
    }

    #[test]
    fn empty_set_is_an_error() {
        assert!(matches!(
            edf_demand_test(&TaskSet::new(), Criticality::Lo, 0),
            Err(SchedError::EmptyTaskSet)
        ));
    }

    #[test]
    fn point_budget_guard_fires() {
        // This set needs two check points (deadlines at 7 and 9 ms inside
        // the 9 ms busy period); a budget of one must trip the guard.
        let ts = TaskSet::from_tasks(vec![task(0, 5, 7, 10), task(1, 4, 9, 9)]).unwrap();
        assert_eq!(
            edf_demand_test(&ts, Criticality::Lo, 0)
                .unwrap()
                .points_checked,
            2
        );
        assert!(matches!(
            edf_demand_test(&ts, Criticality::Lo, 1),
            Err(SchedError::SimulationDiverged)
        ));
    }

    #[test]
    fn full_utilization_with_implicit_deadlines_is_schedulable() {
        // U = 1.0 exactly; EDF schedules it (boundary case, horizon falls
        // back to the hyperperiod).
        let ts = TaskSet::from_tasks(vec![task(0, 50, 100, 100), task(1, 100, 200, 200)]).unwrap();
        let a = edf_demand_test(&ts, Criticality::Lo, 0).unwrap();
        assert!(a.schedulable, "violation at {:?}", a.violation_at);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn dbf_is_monotone_in_t(
                c in 1u64..50,
                d in 1u64..100,
                p in 1u64..100,
                t1 in 0u64..1_000,
                dt in 0u64..1_000,
            ) {
                let d = d.min(p);
                let c = c.min(d);
                let task = task(0, c, d, p);
                let a = task_dbf(&task, ms(t1), Criticality::Lo);
                let b = task_dbf(&task, ms(t1 + dt), Criticality::Lo);
                prop_assert!(b >= a);
            }

            #[test]
            fn demand_test_agrees_with_utilization_for_implicit_deadlines(
                seed in 0u64..500,
            ) {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let cfg = mc_task::generate::GeneratorConfig::default();
                let u = 0.3 + (seed % 7) as f64 * 0.1;
                let ts = mc_task::generate::generate_mixed_taskset(u, &cfg, &mut rng).unwrap();
                // Implicit deadlines: exact test ⇔ U ≤ 1 (budgets at LO).
                let util: f64 = ts.iter().map(|t| t.u_lo()).sum();
                let exact = edf_demand_test(&ts, Criticality::Lo, 0).unwrap();
                prop_assert_eq!(exact.schedulable, util <= 1.0 + 1e-9);
            }
        }
    }
}
