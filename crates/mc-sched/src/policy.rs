//! Scheduling policies: one seam over design-time admission and runtime
//! simulator behaviour.
//!
//! The workspace grew four ways to answer "how should this mixed-criticality
//! set be scheduled?": Baruah's EDF-VD with drop-all LC handling
//! ([`crate::analysis::edf_vd`]), Liu's degraded-quality variant
//! ([`crate::analysis::liu`] + [`LcPolicy::Degrade`]), the exact
//! processor-demand test ([`crate::analysis::dbf`]), and the simulator's
//! mode-switch machinery. This module unifies them behind the
//! [`SchedulingPolicy`] trait so campaigns can race *policies* instead of
//! hand-wiring analysis/simulator pairs, and adds related-work entrants:
//!
//! | Policy | Admission test | Runtime behaviour |
//! |---|---|---|
//! | [`PolicySpec::EdfVdDropAll`] | Baruah Eq. 8 utilisation test | drop-all, system-level switch |
//! | [`PolicySpec::LiuDegrade`] | Liu degraded-quality test | degrade `f`, system-level switch |
//! | [`PolicySpec::DemandBased`] | two-mode demand-bound test (Easwaran-style) | drop-all, system-level switch |
//! | [`PolicySpec::FlexibleUtilization`] | Liu test at a service floor, service level maximised per set (Chen-style flexible MC) | degrade `θ*`, system-level switch |
//! | [`PolicySpec::CombinedModeSwitch`] | Liu test + single-overrun containment (Boudjadar-style) | degrade `f`, task-level then system switch |
//!
//! The related-work tests are sufficient utilisation/demand conditions "in
//! the spirit of" the cited papers, adapted to this workspace's dual-mode
//! task model (see DESIGN.md §16 for the exact conditions and deviations):
//!
//! * **Demand-based** (Easwaran, arXiv:2003.05444): LO-mode demand of the
//!   whole set against virtual deadlines `x·D`, plus HI-mode demand of the
//!   HC subset at `C_HI` against the carry-over margin `(1 − x)·D`
//!   (Ekberg–Yi-style deadline tightening).
//! * **Flexible utilisation** (Chen et al., arXiv:1711.00100): instead of a
//!   fixed degradation factor, the largest sustainable LC service level
//!   `θ* ∈ [θ_min, 1]` is found per task set by bisection over the Liu
//!   conditions; admission requires feasibility at the floor `θ_min`.
//! * **Combined switching** (Boudjadar et al., arXiv:2003.05442): a single
//!   overrunning HC job is contained at task level (the simulator's
//!   [`ModeSwitchPolicy::TaskLevelThenSystem`]); admission additionally
//!   requires that the set absorbs any *single* task running to `C_HI`
//!   while everything else keeps its LO demand.

use crate::analysis::{dbf, edf_vd, liu};
use crate::sim::{LcPolicy, ModeSwitchPolicy, SimConfig};
use crate::SchedError;
use mc_task::time::Duration;
use mc_task::{McTask, TaskId, TaskSet};
use serde::{Deserialize, Serialize};

/// Tolerance for utilisation comparisons (matches the analysis modules).
const EPS: f64 = 1e-9;

/// Design-time verdict of a policy on one task set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyVerdict {
    /// Whether the policy admits the set.
    pub schedulable: bool,
    /// The deadline-shrinking factor the policy would run with, when one
    /// exists under its analysis.
    pub x: Option<f64>,
    /// Fraction of LC service the policy guarantees in HI mode: `0` for
    /// drop-all policies, the degradation factor for fixed-degrade
    /// policies, and the maximised `θ*` for flexible ones.
    pub service_level: f64,
}

/// How a policy wants the runtime simulator configured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeBehaviour {
    /// LC handling at a system-level switch.
    pub lc_policy: LcPolicy,
    /// How `C_LO` overruns trigger mode changes.
    pub mode_switch: ModeSwitchPolicy,
}

/// A scheduling policy: a design-time admission test paired with the
/// runtime behaviour that the test certifies.
pub trait SchedulingPolicy {
    /// Stable, filename/label-safe policy name (used as the campaign
    /// parameter value, so it must not change between releases).
    fn name(&self) -> String;

    /// Runs the design-time admission test.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::EmptyTaskSet`] for an empty set and
    /// [`SchedError::SimulationDiverged`] when a demand test exceeds its
    /// point budget.
    fn admit(&self, ts: &TaskSet) -> Result<PolicyVerdict, SchedError>;

    /// The runtime behaviour this policy's admission test certifies for
    /// `ts` (flexible policies pick per-set parameters here).
    fn runtime(&self, ts: &TaskSet) -> RuntimeBehaviour;

    /// Projects the policy's runtime behaviour onto a base simulator
    /// configuration, leaving horizon/exec-model/seed untouched.
    fn sim_config(&self, ts: &TaskSet, base: &SimConfig) -> SimConfig {
        let rt = self.runtime(ts);
        SimConfig {
            lc_policy: rt.lc_policy,
            mode_switch: rt.mode_switch,
            ..*base
        }
    }
}

/// The concrete, serialisable policy roster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Baruah et al. EDF-VD: LC work is dropped in HI mode.
    EdfVdDropAll,
    /// Liu et al. degraded-quality EDF-VD at a fixed service fraction.
    LiuDegrade {
        /// Fraction of the LC budget retained in HI mode, in `[0, 1]`.
        fraction: f64,
    },
    /// Easwaran-style two-mode demand-bound test; drop-all runtime.
    DemandBased {
        /// Point budget forwarded to [`dbf::edf_demand_test`]
        /// (`0` means the default of 1 000 000).
        max_points: u64,
    },
    /// Chen-style flexible MC: the LC service level is maximised per task
    /// set, subject to a floor.
    FlexibleUtilization {
        /// Minimum acceptable LC service level in `[0, 1]`; admission
        /// fails when even this floor is infeasible.
        min_fraction: f64,
    },
    /// Boudjadar-style combined task-level/system-level mode switching.
    CombinedModeSwitch {
        /// Fraction of the LC budget retained after a system-level
        /// escalation, in `[0, 1]`.
        fraction: f64,
    },
}

impl PolicySpec {
    /// Validates policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidSimConfig`] for non-finite or
    /// out-of-`[0, 1]` fractions.
    pub fn validate(&self) -> Result<(), SchedError> {
        let fraction_ok = |f: f64| f.is_finite() && (0.0..=1.0).contains(&f);
        match *self {
            PolicySpec::EdfVdDropAll | PolicySpec::DemandBased { .. } => Ok(()),
            PolicySpec::LiuDegrade { fraction } | PolicySpec::CombinedModeSwitch { fraction } => {
                if fraction_ok(fraction) {
                    Ok(())
                } else {
                    Err(SchedError::InvalidSimConfig {
                        reason: "policy degradation fraction must be in [0, 1]",
                    })
                }
            }
            PolicySpec::FlexibleUtilization { min_fraction } => {
                if fraction_ok(min_fraction) {
                    Ok(())
                } else {
                    Err(SchedError::InvalidSimConfig {
                        reason: "policy service floor must be in [0, 1]",
                    })
                }
            }
        }
    }

    /// The default cross-policy roster raced by the `policy_arena`
    /// campaign: one entrant per related-work lineage.
    pub fn arena_roster() -> Vec<PolicySpec> {
        vec![
            PolicySpec::EdfVdDropAll,
            PolicySpec::LiuDegrade { fraction: 0.5 },
            PolicySpec::DemandBased { max_points: 0 },
            PolicySpec::FlexibleUtilization { min_fraction: 0.3 },
            PolicySpec::CombinedModeSwitch { fraction: 0.5 },
        ]
    }

    /// The largest LC service level in `[floor, 1]` that keeps the Liu
    /// conditions feasible for these utilisations, or `None` when even the
    /// floor fails. The conditions tighten monotonically in the service
    /// level, so bisection converges to the boundary.
    fn max_service_level(u_hc_lo: f64, u_hc_hi: f64, u_lc_lo: f64, floor: f64) -> Option<f64> {
        if !liu::conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo, floor) {
            return None;
        }
        if liu::conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo, 1.0) {
            return Some(1.0);
        }
        let (mut lo, mut hi) = (floor, 1.0f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if liu::conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Single-overrun containment (Boudjadar-style, at utilisation level
    /// with the workspace's implicit deadlines): the set must absorb any
    /// *one* HC task running to `C_HI` while every other task keeps its LO
    /// demand and LC service continues untouched.
    fn containment_holds(ts: &TaskSet) -> bool {
        let u_total_lo = ts.u_total_lo();
        ts.hc_tasks()
            .all(|t| u_total_lo - t.u_lo() + t.u_hi() <= 1.0 + EPS)
    }

    /// Runs the Easwaran-style two-mode demand test. The LO-mode set is
    /// the whole system against virtual deadlines `x·D`; the HI-mode set
    /// is the HC subset at `C_HI` against the carry-over margin
    /// `(1 − x)·D`. A task whose budget cannot fit its (shrunk) deadline
    /// makes the surrogate unbuildable — that is an unschedulable verdict,
    /// not an error.
    fn demand_admit(ts: &TaskSet, max_points: u64) -> Result<PolicyVerdict, SchedError> {
        if ts.is_empty() {
            return Err(SchedError::EmptyTaskSet);
        }
        let Some(x) = edf_vd::x_factor(ts.u_hc_lo(), ts.u_lc_lo()) else {
            return Ok(PolicyVerdict {
                schedulable: false,
                x: None,
                service_level: 0.0,
            });
        };
        let verdict = |schedulable: bool| PolicyVerdict {
            schedulable,
            x: Some(x),
            service_level: 0.0,
        };

        // LO mode: every task, budgets at C_LO, HC deadlines shrunk to x·D.
        let mut lo_tasks = Vec::with_capacity(ts.len());
        for task in ts.iter() {
            let deadline = edf_vd::virtual_deadline(task, x);
            match surrogate(task.id(), task.c_lo(), deadline, task.period()) {
                Some(t) => lo_tasks.push(t),
                None => return Ok(verdict(false)),
            }
        }
        let Ok(lo_set) = TaskSet::from_tasks(lo_tasks) else {
            return Ok(verdict(false));
        };
        if !dbf::edf_demand_test(&lo_set, mc_task::Criticality::Lo, max_points)?.schedulable {
            return Ok(verdict(false));
        }

        // HI mode: HC subset, budgets at C_HI, carry-over deadline
        // (1 − x)·D. An empty HC subset can never switch: vacuously fine.
        let mut hi_tasks = Vec::new();
        for task in ts.hc_tasks() {
            let margin = task.deadline() - edf_vd::virtual_deadline(task, x);
            match surrogate(task.id(), task.c_hi(), margin, task.period()) {
                Some(t) => hi_tasks.push(t),
                None => return Ok(verdict(false)),
            }
        }
        if hi_tasks.is_empty() {
            return Ok(verdict(true));
        }
        let Ok(hi_set) = TaskSet::from_tasks(hi_tasks) else {
            return Ok(verdict(false));
        };
        let hi = dbf::edf_demand_test(&hi_set, mc_task::Criticality::Lo, max_points)?;
        Ok(verdict(hi.schedulable))
    }
}

/// Builds a single-budget surrogate task for a demand test (the budget is
/// carried in `c_lo` of an LC-criticality task so [`dbf::edf_demand_test`]
/// in LO mode reads it back). `None` when the budget cannot fit the
/// deadline — i.e. the modelled mode is trivially infeasible.
fn surrogate(id: TaskId, budget: Duration, deadline: Duration, period: Duration) -> Option<McTask> {
    McTask::builder(id)
        .period(period)
        .deadline(deadline.min(period).max(Duration::from_nanos(1)))
        .c_lo(budget)
        .build()
        .ok()
}

impl SchedulingPolicy for PolicySpec {
    fn name(&self) -> String {
        match *self {
            PolicySpec::EdfVdDropAll => "edf_vd_drop".to_string(),
            PolicySpec::LiuDegrade { fraction } => format!("liu_degrade_{fraction:.2}"),
            PolicySpec::DemandBased { .. } => "easwaran_demand".to_string(),
            PolicySpec::FlexibleUtilization { min_fraction } => {
                format!("chen_flex_{min_fraction:.2}")
            }
            PolicySpec::CombinedModeSwitch { fraction } => {
                format!("boudjadar_combined_{fraction:.2}")
            }
        }
    }

    fn admit(&self, ts: &TaskSet) -> Result<PolicyVerdict, SchedError> {
        self.validate()?;
        if ts.is_empty() {
            return Err(SchedError::EmptyTaskSet);
        }
        let (u_hc_lo, u_hc_hi, u_lc_lo) = (ts.u_hc_lo(), ts.u_hc_hi(), ts.u_lc_lo());
        Ok(match *self {
            PolicySpec::EdfVdDropAll => {
                let a = edf_vd::analyze(ts);
                PolicyVerdict {
                    schedulable: a.schedulable,
                    x: a.x,
                    service_level: 0.0,
                }
            }
            PolicySpec::LiuDegrade { fraction } => {
                let a = liu::analyze(ts, fraction);
                PolicyVerdict {
                    schedulable: a.schedulable,
                    x: a.x,
                    service_level: fraction,
                }
            }
            PolicySpec::DemandBased { max_points } => return Self::demand_admit(ts, max_points),
            PolicySpec::FlexibleUtilization { min_fraction } => {
                match Self::max_service_level(u_hc_lo, u_hc_hi, u_lc_lo, min_fraction) {
                    Some(theta) => PolicyVerdict {
                        schedulable: true,
                        x: liu::x_factor(u_hc_lo, u_lc_lo),
                        service_level: theta,
                    },
                    None => PolicyVerdict {
                        schedulable: false,
                        x: liu::x_factor(u_hc_lo, u_lc_lo),
                        service_level: min_fraction,
                    },
                }
            }
            PolicySpec::CombinedModeSwitch { fraction } => {
                let system_ok = liu::conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo, fraction);
                PolicyVerdict {
                    schedulable: system_ok && Self::containment_holds(ts),
                    x: liu::x_factor(u_hc_lo, u_lc_lo),
                    service_level: fraction,
                }
            }
        })
    }

    fn runtime(&self, ts: &TaskSet) -> RuntimeBehaviour {
        match *self {
            PolicySpec::EdfVdDropAll | PolicySpec::DemandBased { .. } => RuntimeBehaviour {
                lc_policy: LcPolicy::DropAll,
                mode_switch: ModeSwitchPolicy::System,
            },
            PolicySpec::LiuDegrade { fraction } => RuntimeBehaviour {
                lc_policy: LcPolicy::Degrade(fraction),
                mode_switch: ModeSwitchPolicy::System,
            },
            PolicySpec::FlexibleUtilization { min_fraction } => {
                // Run at the per-set maximised service level; fall back to
                // the floor when the set was not admitted.
                let theta =
                    Self::max_service_level(ts.u_hc_lo(), ts.u_hc_hi(), ts.u_lc_lo(), min_fraction)
                        .unwrap_or(min_fraction);
                RuntimeBehaviour {
                    lc_policy: LcPolicy::Degrade(theta),
                    mode_switch: ModeSwitchPolicy::System,
                }
            }
            PolicySpec::CombinedModeSwitch { fraction } => RuntimeBehaviour {
                lc_policy: LcPolicy::Degrade(fraction),
                mode_switch: ModeSwitchPolicy::TaskLevelThenSystem,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::{Criticality, McTask, TaskId};
    use std::collections::BTreeSet;

    fn hc(id: u32, c_lo_ms: u64, c_hi_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(c_hi_ms))
            .build()
            .unwrap()
    }

    fn lc(id: u32, c_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_ms))
            .build()
            .unwrap()
    }

    /// u_hc_lo = 0.2, u_hc_hi = 0.5, u_lc_lo = 0.3.
    fn light_set() -> TaskSet {
        TaskSet::from_tasks(vec![hc(0, 20, 50, 100), lc(1, 30, 100)]).unwrap()
    }

    #[test]
    fn roster_has_five_distinct_valid_policies() {
        let roster = PolicySpec::arena_roster();
        assert_eq!(roster.len(), 5);
        let names: BTreeSet<String> = roster.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), roster.len(), "duplicate policy names");
        for p in &roster {
            p.validate().unwrap();
        }
    }

    #[test]
    fn every_policy_admits_a_lightly_loaded_set() {
        let ts = light_set();
        for p in PolicySpec::arena_roster() {
            let v = p.admit(&ts).unwrap();
            assert!(v.schedulable, "{} rejected the light set", p.name());
        }
    }

    #[test]
    fn every_policy_rejects_an_overloaded_set() {
        // u_hc_lo = 0.8, u_lc_lo = 0.4: LO mode alone is overloaded.
        let ts = TaskSet::from_tasks(vec![hc(0, 80, 90, 100), lc(1, 40, 100)]).unwrap();
        for p in PolicySpec::arena_roster() {
            let v = p.admit(&ts).unwrap();
            assert!(!v.schedulable, "{} admitted an overloaded set", p.name());
        }
    }

    #[test]
    fn flexible_policy_maximises_the_service_level() {
        // u_hc_lo = 0.1, u_hc_hi = 0.8, u_lc_lo = 0.3:
        //   x = 1/7; HI condition: x·0.3 + (1 − x)·0.3·θ + 0.8 ≤ 1
        //   ⇒ θ ≤ (0.2 − 3/70)/(0.9·6/7) ≈ 0.6111.
        let ts = TaskSet::from_tasks(vec![hc(0, 10, 80, 100), lc(1, 30, 100)]).unwrap();
        let p = PolicySpec::FlexibleUtilization { min_fraction: 0.3 };
        let v = p.admit(&ts).unwrap();
        assert!(v.schedulable);
        let theta = v.service_level;
        assert!((theta - 0.6111).abs() < 1e-3, "theta = {theta}");
        // Maximality: the Liu conditions flip just above θ*.
        assert!(liu::conditions_hold(0.1, 0.8, 0.3, theta));
        assert!(!liu::conditions_hold(
            0.1,
            0.8,
            0.3,
            (theta + 1e-3).min(1.0)
        ));
        // The runtime runs at θ*, not at the floor.
        match p.runtime(&ts).lc_policy {
            LcPolicy::Degrade(f) => assert!((f - theta).abs() < 1e-12),
            other => panic!("unexpected lc policy {other:?}"),
        }
    }

    #[test]
    fn combined_policy_rejects_uncontainable_single_overrun() {
        // u_total_lo = 0.4 but one HC task jumps 0.1 → 0.8 at C_HI:
        // containment demand 0.4 − 0.1 + 0.8 = 1.1 > 1.
        let ts = TaskSet::from_tasks(vec![hc(0, 10, 80, 100), lc(1, 30, 100)]).unwrap();
        let combined = PolicySpec::CombinedModeSwitch { fraction: 0.5 };
        assert!(!combined.admit(&ts).unwrap().schedulable);
        // The plain system-level policies still admit it.
        assert!(PolicySpec::EdfVdDropAll.admit(&ts).unwrap().schedulable);
        assert!(
            PolicySpec::LiuDegrade { fraction: 0.5 }
                .admit(&ts)
                .unwrap()
                .schedulable
        );
    }

    #[test]
    fn demand_policy_accounts_for_carry_over() {
        // Two HC tasks, u_hc_lo = 0.4, u_hc_hi = 1.0, no LC: Baruah's
        // utilisation test sits exactly at its boundary and admits, but the
        // carry-over demand (two 50 ms budgets inside a (1 − 0.4)·100 ms
        // margin) cannot fit: the demand-based test rejects.
        let ts = TaskSet::from_tasks(vec![hc(0, 20, 50, 100), hc(1, 20, 50, 100)]).unwrap();
        assert!(PolicySpec::EdfVdDropAll.admit(&ts).unwrap().schedulable);
        let v = PolicySpec::DemandBased { max_points: 0 }
            .admit(&ts)
            .unwrap();
        assert!(!v.schedulable);
    }

    #[test]
    fn invalid_fractions_are_rejected_at_admit_time() {
        let ts = light_set();
        for p in [
            PolicySpec::LiuDegrade { fraction: 1.5 },
            PolicySpec::LiuDegrade { fraction: f64::NAN },
            PolicySpec::FlexibleUtilization { min_fraction: -0.1 },
            PolicySpec::CombinedModeSwitch {
                fraction: f64::INFINITY,
            },
        ] {
            assert!(p.validate().is_err());
            assert!(matches!(
                p.admit(&ts),
                Err(SchedError::InvalidSimConfig { .. })
            ));
        }
    }

    #[test]
    fn empty_set_is_a_structured_error_for_every_policy() {
        for p in PolicySpec::arena_roster() {
            assert!(
                matches!(p.admit(&TaskSet::new()), Err(SchedError::EmptyTaskSet)),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn demand_point_budget_propagates_as_error() {
        // Constrained deadlines needing two check points; budget of one.
        let t = |id: u32, c: u64, d: u64, p: u64| {
            McTask::builder(TaskId::new(id))
                .period(Duration::from_millis(p))
                .deadline(Duration::from_millis(d))
                .c_lo(Duration::from_millis(c))
                .build()
                .unwrap()
        };
        let ts = TaskSet::from_tasks(vec![t(0, 5, 7, 10), t(1, 4, 9, 9)]).unwrap();
        assert!(matches!(
            PolicySpec::DemandBased { max_points: 1 }.admit(&ts),
            Err(SchedError::SimulationDiverged)
        ));
    }

    #[test]
    fn sim_config_projection_keeps_base_knobs() {
        let ts = light_set();
        let base = SimConfig::new(Duration::from_secs(3));
        let cfg = PolicySpec::CombinedModeSwitch { fraction: 0.5 }.sim_config(&ts, &base);
        assert_eq!(cfg.horizon, base.horizon);
        assert_eq!(cfg.exec_model, base.exec_model);
        assert_eq!(cfg.seed, base.seed);
        assert_eq!(cfg.lc_policy, LcPolicy::Degrade(0.5));
        assert_eq!(cfg.mode_switch, ModeSwitchPolicy::TaskLevelThenSystem);
        let cfg = PolicySpec::EdfVdDropAll.sim_config(&ts, &base);
        assert_eq!(cfg.lc_policy, LcPolicy::DropAll);
        assert_eq!(cfg.mode_switch, ModeSwitchPolicy::System);
    }

    #[test]
    fn policy_names_are_stable() {
        // Campaign stores key on these: renaming breaks resume/merge.
        let names: Vec<String> = PolicySpec::arena_roster()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "edf_vd_drop",
                "liu_degrade_0.50",
                "easwaran_demand",
                "chen_flex_0.30",
                "boudjadar_combined_0.50",
            ]
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::SeedableRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The combined policy's admission implies Liu's (it only adds
            /// the containment condition), and the flexible policy at floor
            /// `f` admits whenever fixed Liu at `f` does.
            #[test]
            fn admission_orderings_hold(seed in 0u64..2_000) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let cfg = mc_task::generate::GeneratorConfig::default();
                let u = 0.4 + (seed % 6) as f64 * 0.1;
                let ts = mc_task::generate::generate_mixed_taskset(u, &cfg, &mut rng).unwrap();
                let liu_ok = PolicySpec::LiuDegrade { fraction: 0.5 }
                    .admit(&ts).unwrap().schedulable;
                let combined_ok = PolicySpec::CombinedModeSwitch { fraction: 0.5 }
                    .admit(&ts).unwrap().schedulable;
                let flex = PolicySpec::FlexibleUtilization { min_fraction: 0.5 }
                    .admit(&ts).unwrap();
                prop_assert!(!combined_ok || liu_ok);
                prop_assert_eq!(flex.schedulable, liu_ok);
                if flex.schedulable {
                    prop_assert!(flex.service_level >= 0.5 - 1e-9);
                    prop_assert!(flex.service_level <= 1.0);
                }
            }

            /// Every admitted verdict carries a usable service level and
            /// the demand-based test is sound against LO utilisation.
            #[test]
            fn verdicts_are_well_formed(seed in 0u64..1_000) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let cfg = mc_task::generate::GeneratorConfig::default();
                let u = 0.4 + (seed % 6) as f64 * 0.1;
                let ts = mc_task::generate::generate_mixed_taskset(u, &cfg, &mut rng).unwrap();
                for p in PolicySpec::arena_roster() {
                    let v = p.admit(&ts).unwrap();
                    prop_assert!((0.0..=1.0).contains(&v.service_level), "{}", p.name());
                    if let Some(x) = v.x {
                        prop_assert!((0.0..=1.0).contains(&x), "{}", p.name());
                    }
                }
                let demand_ok = PolicySpec::DemandBased { max_points: 0 }
                    .admit(&ts).unwrap().schedulable;
                let u_lo: f64 = ts.iter().map(|t| t.u_lo()).sum();
                if demand_ok {
                    prop_assert!(u_lo <= 1.0 + 1e-6);
                }
            }
        }
    }
}
