//! Discrete-event simulation of mixed-criticality runtime behaviour.
//!
//! The analyses in [`crate::analysis`] answer the *design-time* question
//! ("is this set schedulable?"). This module answers the *runtime* questions
//! the paper's motivation section raises: how often does the system switch
//! to HI mode, how many LC jobs get dropped, and do HC deadlines actually
//! hold?
//!
//! The simulator implements the paper's §III operational model on a
//! preemptive uniprocessor:
//!
//! * the system starts in LO mode with every task admitted;
//! * jobs are dispatched by EDF over *virtual deadlines* (EDF-VD) in LO
//!   mode and over real deadlines in HI mode;
//! * the instant an HC job executes past its optimistic WCET `C_LO`, the
//!   system switches to HI mode and LC jobs are dropped
//!   ([`LcPolicy::DropAll`], Baruah et al.) or degraded
//!   ([`LcPolicy::Degrade`], Liu et al.);
//! * the system returns to LO mode as soon as no HC job is ready.

mod engine;
mod exec_model;
mod metrics;
pub mod multi;

pub use engine::{simulate, ModeSwitchPolicy, SimConfig};
pub use exec_model::JobExecModel;
pub use metrics::SimMetrics;
pub use multi::{simulate_multi, MultiExecModel, MultiSimConfig, MultiSimMetrics};

use serde::{Deserialize, Serialize};

/// What happens to low-criticality work when the system enters HI mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LcPolicy {
    /// Discard all ready LC jobs and reject LC releases while in HI mode
    /// (Baruah et al., RTNS 2012).
    DropAll,
    /// Keep LC jobs running with the given fraction of their LO-mode budget
    /// (Liu et al., RTSS 2016; the paper's experiments use `0.5`).
    Degrade(f64),
}

impl LcPolicy {
    /// Validates the policy (a degradation fraction must lie in `[0, 1]`).
    pub fn is_valid(&self) -> bool {
        match self {
            LcPolicy::DropAll => true,
            LcPolicy::Degrade(f) => f.is_finite() && (0.0..=1.0).contains(f),
        }
    }
}
