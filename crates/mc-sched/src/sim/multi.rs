//! Discrete-event simulation of multi-level criticality systems.
//!
//! Generalises the dual-criticality engine to `L` modes: the system starts
//! in mode 0; when a running job exhausts its current-mode budget without
//! finishing, the system escalates one mode, killing the jobs (and
//! rejecting the releases) of tasks whose criticality level is below the
//! new mode. Each task above the current mode is dispatched against a
//! pairwise EDF-VD virtual deadline (factor `x_k` from the mode-`k` dual
//! reduction); the system returns to mode 0 as soon as no job at or above
//! the current mode is ready.

use crate::analysis::edf_vd;
use crate::SchedError;
use mc_task::multi::{MultiTask, MultiTaskSet};
use mc_task::time::{Duration, Instant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-job execution-time models for multi-level simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MultiExecModel {
    /// Every job runs exactly its mode-0 budget: never escalates.
    FullLowestBudget,
    /// Every job runs its *top* budget: escalates as hard as possible.
    FullTopBudget,
    /// Profile-driven: normal around `(ACET, σ)` clamped into
    /// `[1 ns, top]`; tasks without a profile draw uniformly from
    /// `[½·C(0), C(0)]`.
    Profile,
}

impl MultiExecModel {
    fn draw<R: Rng + ?Sized>(&self, task: &MultiTask, rng: &mut R) -> Duration {
        let one = Duration::from_nanos(1);
        let lowest = task.budgets()[0];
        let top = *task.budgets().last().expect("non-empty budgets");
        match self {
            MultiExecModel::FullLowestBudget => lowest.clamp(one, top),
            MultiExecModel::FullTopBudget => top.max(one),
            MultiExecModel::Profile => match task.profile() {
                Some(p) if p.sigma() > 0.0 => {
                    let u1: f64 = loop {
                        let u: f64 = rng.random();
                        if u > 0.0 {
                            break u;
                        }
                    };
                    let u2: f64 = rng.random();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let x = (p.acet() + p.sigma() * z).max(1.0);
                    Duration::try_from_nanos_f64_ceil(x)
                        .unwrap_or(top)
                        .clamp(one, top)
                }
                Some(p) => Duration::try_from_nanos_f64_ceil(p.acet().max(1.0))
                    .unwrap_or(top)
                    .clamp(one, top),
                None => {
                    let f = 0.5 + 0.5 * rng.random::<f64>();
                    lowest.mul_f64(f).clamp(one, top)
                }
            },
        }
    }
}

/// Configuration of one multi-level simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiSimConfig {
    /// Simulated time span.
    pub horizon: Duration,
    /// Per-job execution-time model.
    pub exec_model: MultiExecModel,
    /// RNG seed.
    pub seed: u64,
}

/// Metrics of one multi-level run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MultiSimMetrics {
    /// Jobs released, indexed by task criticality level.
    pub released_per_level: Vec<u64>,
    /// Jobs completed, indexed by task criticality level.
    pub completed_per_level: Vec<u64>,
    /// Deadline misses, indexed by task criticality level.
    pub misses_per_level: Vec<u64>,
    /// Escalations out of each mode (`escalations[k]` = mode k → k+1).
    pub escalations: Vec<u64>,
    /// Jobs killed at escalations.
    pub jobs_killed: u64,
    /// Releases rejected because the task's level was below the mode.
    pub releases_rejected: u64,
    /// Time spent in each mode.
    pub time_in_mode: Vec<Duration>,
    /// Processor busy time.
    pub busy_time: Duration,
    /// Total simulated time.
    pub horizon: Duration,
}

impl MultiSimMetrics {
    /// Deadline misses of the *top* criticality level — a sound design has
    /// none.
    pub fn top_level_misses(&self) -> u64 {
        self.misses_per_level.last().copied().unwrap_or(0)
    }

    /// Total escalations across all modes.
    pub fn total_escalations(&self) -> u64 {
        self.escalations.iter().sum()
    }
}

#[derive(Debug, Clone)]
struct Job {
    task_idx: usize,
    level: usize,
    abs_deadline: Instant,
    release: Instant,
    remaining: Duration,
    executed: Duration,
}

/// Runs one multi-level simulation.
///
/// # Errors
///
/// Returns [`SchedError::EmptyTaskSet`] for an empty set,
/// [`SchedError::InvalidSimConfig`] for a zero horizon, and
/// [`SchedError::SimulationDiverged`] if the event guard trips.
pub fn simulate_multi(
    ts: &MultiTaskSet,
    cfg: &MultiSimConfig,
) -> Result<MultiSimMetrics, SchedError> {
    if ts.is_empty() {
        return Err(SchedError::EmptyTaskSet);
    }
    if cfg.horizon.is_zero() {
        return Err(SchedError::InvalidSimConfig {
            reason: "horizon must be non-zero",
        });
    }
    let levels = ts.levels();
    let tasks: Vec<&MultiTask> = ts.iter().collect();
    // Pairwise virtual-deadline factors x_k (1.0 when no valid factor —
    // dispatch falls back to plain EDF for that pair).
    let x: Vec<f64> = (0..levels - 1)
        .map(|k| {
            ts.reduce_to_dual(k)
                .ok()
                .and_then(|(u_hc_lo, _, u_lc_lo)| edf_vd::x_factor(u_hc_lo, u_lc_lo))
                .unwrap_or(1.0)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut metrics = MultiSimMetrics {
        released_per_level: vec![0; levels],
        completed_per_level: vec![0; levels],
        misses_per_level: vec![0; levels],
        escalations: vec![0; levels - 1],
        time_in_mode: vec![Duration::ZERO; levels],
        horizon: cfg.horizon,
        ..MultiSimMetrics::default()
    };
    let horizon = Instant::ZERO + cfg.horizon;
    let mut next_release: Vec<Instant> = vec![Instant::ZERO; tasks.len()];
    let mut pending: Vec<Job> = Vec::new();
    let mut mode = 0usize;
    let mut clock = Instant::ZERO;
    let mut mode_entered = Instant::ZERO;

    let effective_deadline = |j: &Job, mode: usize| -> Instant {
        if j.level > mode && mode < levels - 1 {
            let vd = tasks[j.task_idx]
                .period()
                .mul_f64(x[mode].clamp(0.0, 1.0))
                .max(Duration::from_nanos(1));
            (j.release + vd).min(j.abs_deadline)
        } else {
            j.abs_deadline
        }
    };

    let mut guard = 0u64;
    loop {
        guard += 1;
        if guard > 10_000_000 {
            return Err(SchedError::SimulationDiverged);
        }

        let running_idx = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| (effective_deadline(j, mode), j.task_idx))
            .map(|(i, _)| i);

        let t_release = next_release
            .iter()
            .copied()
            .min()
            .expect("non-empty task set");
        let mut t_next = horizon.min(t_release);
        if let Some(ri) = running_idx {
            let j = &pending[ri];
            t_next = t_next.min(clock + j.remaining);
            let budget = tasks[j.task_idx]
                .budget(mode.min(j.level))
                .expect("alive jobs have a budget at the current mode");
            if j.executed < budget {
                t_next = t_next.min(clock + (budget - j.executed));
            }
        }
        if let Some(d) = pending.iter().map(|j| j.abs_deadline).min() {
            t_next = t_next.min(d);
        }

        let delta = t_next - clock;
        if let Some(ri) = running_idx {
            let j = &mut pending[ri];
            j.remaining = j.remaining.saturating_sub(delta);
            j.executed += delta;
            metrics.busy_time += delta;
        }
        clock = t_next;
        if clock >= horizon {
            break;
        }

        // 1. Completion.
        if let Some(ri) = running_idx {
            if pending[ri].remaining.is_zero() {
                let j = pending.swap_remove(ri);
                metrics.completed_per_level[j.level] += 1;
            }
        }

        // 2. Budget exhaustion → escalate (possibly repeatedly if the job
        // also exceeds the next mode's budget boundary at this instant).
        while mode < levels - 1 {
            let exhausted = pending.iter().any(|j| {
                let budget = tasks[j.task_idx]
                    .budget(mode.min(j.level))
                    .expect("alive jobs have a budget");
                !j.remaining.is_zero() && j.executed >= budget
            });
            if !exhausted {
                break;
            }
            metrics.escalations[mode] += 1;
            metrics.time_in_mode[mode] += clock - mode_entered;
            mode_entered = clock;
            mode += 1;
            // Kill jobs of tasks below the new mode.
            let before = pending.len();
            pending.retain(|j| j.level >= mode);
            metrics.jobs_killed += (before - pending.len()) as u64;
        }

        // 3. Deadline misses.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].abs_deadline <= clock && !pending[i].remaining.is_zero() {
                let j = pending.swap_remove(i);
                metrics.misses_per_level[j.level] += 1;
            } else {
                i += 1;
            }
        }

        // 4. De-escalation: nothing at or above the current mode is ready.
        if mode > 0 && !pending.iter().any(|j| j.level >= mode) {
            metrics.time_in_mode[mode] += clock - mode_entered;
            mode_entered = clock;
            mode = 0;
        }

        // 5. Releases.
        for (idx, task) in tasks.iter().enumerate() {
            if next_release[idx] != clock {
                continue;
            }
            next_release[idx] = clock + task.period();
            if task.level() < mode {
                metrics.releases_rejected += 1;
                continue;
            }
            let exec = cfg.exec_model.draw(task, &mut rng);
            metrics.released_per_level[task.level()] += 1;
            pending.push(Job {
                task_idx: idx,
                level: task.level(),
                abs_deadline: clock + task.period(),
                release: clock,
                remaining: exec,
                executed: Duration::ZERO,
            });
        }
    }
    metrics.time_in_mode[mode] += clock.min(horizon) - mode_entered;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::task::TaskId;
    use mc_task::ExecutionProfile;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn task(id: u32, level: usize, budgets_ms: &[u64], period_ms: u64) -> MultiTask {
        MultiTask::new(
            TaskId::new(id),
            "",
            level,
            budgets_ms.iter().map(|&b| ms(b)).collect(),
            ms(period_ms),
            None,
        )
        .unwrap()
    }

    fn tri_level() -> MultiTaskSet {
        let mut ts = MultiTaskSet::new(3).unwrap();
        ts.push(task(0, 2, &[5, 10, 40], 100)).unwrap();
        ts.push(task(1, 1, &[10, 20], 100)).unwrap();
        ts.push(task(2, 0, &[20], 100)).unwrap();
        ts
    }

    fn cfg(model: MultiExecModel) -> MultiSimConfig {
        MultiSimConfig {
            horizon: Duration::from_secs(10),
            exec_model: model,
            seed: 1,
        }
    }

    #[test]
    fn no_overruns_means_no_escalations() {
        let m = simulate_multi(&tri_level(), &cfg(MultiExecModel::FullLowestBudget)).unwrap();
        assert_eq!(m.total_escalations(), 0);
        assert_eq!(m.jobs_killed, 0);
        assert_eq!(m.releases_rejected, 0);
        assert!(m.misses_per_level.iter().all(|&x| x == 0));
        // 100 jobs per task over 10 s of 100 ms periods.
        assert_eq!(m.released_per_level, vec![100, 100, 100]);
        assert_eq!(m.completed_per_level, vec![100, 100, 100]);
        // All time in mode 0.
        assert_eq!(m.time_in_mode[1], Duration::ZERO);
        assert_eq!(m.time_in_mode[2], Duration::ZERO);
        // Busy = (5 + 10 + 20) ms per 100 ms → 3.5 s.
        assert_eq!(m.busy_time, Duration::from_millis(3_500));
    }

    #[test]
    fn constant_top_budget_escalates_through_all_modes() {
        let m = simulate_multi(&tri_level(), &cfg(MultiExecModel::FullTopBudget)).unwrap();
        assert!(m.escalations[0] > 0, "mode 0 → 1 must fire");
        assert!(m.escalations[1] > 0, "mode 1 → 2 must fire");
        assert!(m.jobs_killed + m.releases_rejected > 0);
        // The tri-level set is pairwise schedulable, so the top level is
        // protected even under constant worst-case behaviour.
        assert!(crate::analysis::multi::analyze(&tri_level()).schedulable);
        assert_eq!(m.top_level_misses(), 0);
        assert!(m.time_in_mode[2] > Duration::ZERO);
    }

    #[test]
    fn two_level_multi_matches_dual_engine_counters() {
        // Build the same system in both models and compare headline
        // counters under deterministic execution.
        let mut multi = MultiTaskSet::new(2).unwrap();
        multi.push(task(0, 1, &[20, 50], 100)).unwrap();
        multi.push(task(1, 0, &[30], 100)).unwrap();
        let mm = simulate_multi(&multi, &cfg(MultiExecModel::FullTopBudget)).unwrap();

        let dual = mc_task::TaskSet::from_tasks(vec![
            mc_task::McTask::builder(TaskId::new(0))
                .criticality(mc_task::Criticality::Hi)
                .period(ms(100))
                .c_lo(ms(20))
                .c_hi(ms(50))
                .build()
                .unwrap(),
            mc_task::McTask::builder(TaskId::new(1))
                .period(ms(100))
                .c_lo(ms(30))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let dm = crate::sim::simulate(
            &dual,
            &crate::sim::SimConfig {
                horizon: Duration::from_secs(10),
                lc_policy: crate::sim::LcPolicy::DropAll,
                exec_model: crate::sim::JobExecModel::FullHiBudget,
                x_factor: None,
                release_jitter: Duration::ZERO,
                mode_switch: crate::sim::ModeSwitchPolicy::System,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(mm.total_escalations(), dm.mode_switches);
        assert_eq!(mm.top_level_misses(), dm.hc_deadline_misses);
        assert_eq!(
            mm.jobs_killed + mm.releases_rejected,
            dm.lc_dropped_at_switch + dm.lc_rejected_in_hi
        );
        assert_eq!(mm.released_per_level[1], dm.hc_released);
    }

    #[test]
    fn profile_model_is_deterministic_per_seed() {
        let mut ts = tri_level();
        // Attach profiles so Profile mode has something to sample.
        for t in ts.iter_mut() {
            if t.level() > 0 {
                let top = t.budgets().last().unwrap().as_nanos() as f64;
                let lower: Vec<Duration> = (0..t.level()).map(|k| t.budgets()[k]).collect();
                *t = MultiTask::new(
                    t.id(),
                    t.name().to_string(),
                    t.level(),
                    {
                        let mut b = lower.clone();
                        b.push(*t.budgets().last().unwrap());
                        b
                    },
                    t.period(),
                    Some(ExecutionProfile::new(top / 10.0, top / 50.0, top).unwrap()),
                )
                .unwrap();
            }
        }
        let a = simulate_multi(&ts, &cfg(MultiExecModel::Profile)).unwrap();
        let b = simulate_multi(&ts, &cfg(MultiExecModel::Profile)).unwrap();
        assert_eq!(a, b);
        let mut c2 = cfg(MultiExecModel::Profile);
        c2.seed = 2;
        let c = simulate_multi(&ts, &c2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn job_conservation_per_level() {
        for model in [
            MultiExecModel::FullLowestBudget,
            MultiExecModel::FullTopBudget,
            MultiExecModel::Profile,
        ] {
            let m = simulate_multi(&tri_level(), &cfg(model)).unwrap();
            let released: u64 = m.released_per_level.iter().sum();
            let completed: u64 = m.completed_per_level.iter().sum();
            let missed: u64 = m.misses_per_level.iter().sum();
            let accounted = completed + missed + m.jobs_killed;
            assert!(accounted <= released, "{model:?}");
            assert!(released - accounted <= 3, "{model:?}: too many in flight");
            assert!(m.busy_time <= m.horizon);
            let mode_time: Duration = m
                .time_in_mode
                .iter()
                .fold(Duration::ZERO, |acc, &t| acc + t);
            assert_eq!(mode_time, m.horizon, "{model:?}: mode times partition time");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ts = tri_level();
        let mut c = cfg(MultiExecModel::FullLowestBudget);
        c.horizon = Duration::ZERO;
        assert!(simulate_multi(&ts, &c).is_err());
        let empty = MultiTaskSet::new(2).unwrap();
        assert!(matches!(
            simulate_multi(&empty, &cfg(MultiExecModel::Profile)),
            Err(SchedError::EmptyTaskSet)
        ));
    }
}
