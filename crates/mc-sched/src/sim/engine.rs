//! The preemptive uniprocessor simulation engine.

use super::exec_model::JobExecModel;
use super::metrics::SimMetrics;
use super::LcPolicy;
use crate::analysis::edf_vd;
use crate::SchedError;
use mc_task::time::{Duration, Instant};
use mc_task::{Criticality, TaskSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How `C_LO` overruns trigger criticality-mode changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModeSwitchPolicy {
    /// The first `C_LO` overrun switches the whole system to HI mode
    /// (Baruah et al.; Liu et al.). This is the default and the behaviour
    /// all earlier campaign stores were recorded under.
    #[default]
    System,
    /// Combined task-level/system-level switching (Boudjadar et al.):
    /// a single overrunning HC job is contained at task level — it runs on
    /// toward `C_HI` while the system stays in LO mode and LC service
    /// continues untouched. Only a second concurrent overrun escalates to
    /// a system-level HI switch.
    TaskLevelThenSystem,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated time span (all tasks release synchronously at `t = 0`).
    pub horizon: Duration,
    /// LC handling when the system enters HI mode.
    pub lc_policy: LcPolicy,
    /// Per-job execution-time model.
    pub exec_model: JobExecModel,
    /// EDF-VD deadline-shrinking factor. `None` derives it from the task
    /// set per Baruah's formula; `Some(1.0)` degenerates to plain EDF.
    pub x_factor: Option<f64>,
    /// Sporadic release jitter: each job's release is delayed by a uniform
    /// draw from `[0, release_jitter]` after its minimum separation (the
    /// period). `ZERO` (the default) gives strictly periodic releases.
    #[serde(default)]
    pub release_jitter: Duration,
    /// How `C_LO` overruns trigger mode changes. The default,
    /// [`ModeSwitchPolicy::System`], preserves the classic EDF-VD
    /// semantics byte-for-byte.
    #[serde(default)]
    pub mode_switch: ModeSwitchPolicy,
    /// RNG seed for stochastic execution models.
    pub seed: u64,
}

impl SimConfig {
    /// A conventional configuration: EDF-VD with derived `x`, drop-all LC
    /// policy, profile-driven execution times.
    pub fn new(horizon: Duration) -> Self {
        SimConfig {
            horizon,
            lc_policy: LcPolicy::DropAll,
            exec_model: JobExecModel::Profile,
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed: 0,
        }
    }

    fn validate(&self) -> Result<(), SchedError> {
        if self.horizon.is_zero() {
            return Err(SchedError::InvalidSimConfig {
                reason: "horizon must be non-zero",
            });
        }
        if !self.lc_policy.is_valid() {
            return Err(SchedError::InvalidSimConfig {
                reason: "degradation fraction must be in [0, 1]",
            });
        }
        if !self.exec_model.is_valid() {
            return Err(SchedError::InvalidSimConfig {
                reason: "execution model parameter out of range",
            });
        }
        if let Some(x) = self.x_factor {
            if !x.is_finite() || x <= 0.0 || x > 1.0 {
                return Err(SchedError::InvalidSimConfig {
                    reason: "x factor must lie in (0, 1]",
                });
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Job {
    task_idx: usize,
    criticality: Criticality,
    abs_deadline: Instant,
    virtual_deadline: Instant,
    remaining: Duration,
    executed: Duration,
    /// LO-mode budget: executing past this in LO mode triggers the switch.
    budget_lo: Duration,
    /// Set when HI mode truncated this (LC) job's demand.
    degraded: bool,
    /// Set when a task-level mode switch already contained this (HC) job's
    /// overrun, so it is counted once.
    contained: bool,
}

/// Runs one simulation of `ts` under `cfg` and returns the collected
/// metrics.
///
/// # Errors
///
/// Returns [`SchedError::InvalidSimConfig`] for invalid configurations and
/// [`SchedError::EmptyTaskSet`] when there is nothing to simulate.
///
/// # Example
///
/// ```
/// use mc_sched::sim::{simulate, SimConfig, JobExecModel, LcPolicy};
/// use mc_task::time::Duration;
/// use mc_task::{Criticality, McTask, TaskId, TaskSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::from_tasks(vec![McTask::builder(TaskId::new(0))
///     .criticality(Criticality::Hi)
///     .period(Duration::from_millis(100))
///     .c_lo(Duration::from_millis(10))
///     .c_hi(Duration::from_millis(40))
///     .build()?])?;
/// let mut cfg = SimConfig::new(Duration::from_secs(1));
/// cfg.exec_model = JobExecModel::FullLoBudget;
/// let metrics = simulate(&ts, &cfg)?;
/// assert_eq!(metrics.mode_switches, 0);
/// assert_eq!(metrics.hc_deadline_misses, 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate(ts: &TaskSet, cfg: &SimConfig) -> Result<SimMetrics, SchedError> {
    cfg.validate()?;
    if ts.is_empty() {
        return Err(SchedError::EmptyTaskSet);
    }
    let x = match cfg.x_factor {
        Some(x) => x,
        None => edf_vd::x_factor(ts.u_hc_lo(), ts.u_lc_lo()).unwrap_or(1.0),
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tasks = ts.tasks();
    let mut next_release: Vec<Instant> = vec![Instant::ZERO; tasks.len()];
    let mut pending: Vec<Job> = Vec::new();
    let mut mode = Criticality::Lo;
    let mut clock = Instant::ZERO;
    let mut metrics = SimMetrics {
        horizon: cfg.horizon,
        ..SimMetrics::default()
    };
    let horizon = Instant::ZERO + cfg.horizon;
    let mut hi_entered_at: Option<Instant> = None;

    // Bound the number of events defensively: releases dominate.
    let mut guard: u64 = 0;
    let max_events: u64 = 10_000_000;

    loop {
        guard += 1;
        if guard > max_events {
            return Err(SchedError::SimulationDiverged);
        }

        // Dispatch: EDF over virtual deadlines in LO mode, real deadlines in
        // HI mode. Ties break on task index for determinism.
        let running_idx = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| {
                let key = match mode {
                    Criticality::Lo => j.virtual_deadline,
                    Criticality::Hi => j.abs_deadline,
                };
                (key, j.task_idx)
            })
            .map(|(i, _)| i);

        // Next event time. An empty release queue is a structural error
        // (guarded above), never a panic: mc-serve workers simulate task
        // sets rebuilt from shipped specs and must fail a unit, not crash.
        let t_release = next_release
            .iter()
            .copied()
            .min()
            .ok_or(SchedError::EmptyTaskSet)?;
        let mut t_next = horizon.min(t_release);
        if let Some(ri) = running_idx {
            let j = &pending[ri];
            let t_complete = clock + j.remaining;
            t_next = t_next.min(t_complete);
            if mode == Criticality::Lo && j.criticality.is_high() && j.executed < j.budget_lo {
                let t_switch = clock + (j.budget_lo - j.executed);
                t_next = t_next.min(t_switch);
            }
            // Deadline of the running job (miss detection).
            t_next = t_next.min(j.abs_deadline);
        }
        // Earliest pending deadline (a queued job can miss while another runs).
        if let Some(d) = pending.iter().map(|j| j.abs_deadline).min() {
            t_next = t_next.min(d);
        }

        // Advance time, accounting execution to the running job.
        let delta = t_next - clock;
        if let Some(ri) = running_idx {
            let j = &mut pending[ri];
            j.remaining = j.remaining.saturating_sub(delta);
            j.executed += delta;
            metrics.busy_time += delta;
        }
        clock = t_next;

        if clock >= horizon {
            break;
        }

        // 1. Completion of the running job.
        if let Some(ri) = running_idx {
            if pending[ri].remaining.is_zero() {
                let j = pending.swap_remove(ri);
                match j.criticality {
                    Criticality::Hi => metrics.hc_completed += 1,
                    Criticality::Lo => {
                        if j.degraded {
                            metrics.lc_degraded += 1;
                        } else {
                            metrics.lc_completed += 1;
                        }
                    }
                }
                // §III: back to LO when no HC job is ready.
                if mode == Criticality::Hi && !pending.iter().any(|p| p.criticality.is_high()) {
                    mode = Criticality::Lo;
                    if let Some(t0) = hi_entered_at.take() {
                        metrics.time_in_hi += clock - t0;
                    }
                }
            }
        }

        // 2. Budget overrun of (possibly still running) HC jobs.
        if mode == Criticality::Lo {
            let escalate = match cfg.mode_switch {
                ModeSwitchPolicy::System => pending.iter().any(|j| {
                    j.criticality.is_high() && j.executed >= j.budget_lo && !j.remaining.is_zero()
                }),
                ModeSwitchPolicy::TaskLevelThenSystem => {
                    // Contain each overrunning job at task level (counted
                    // once per job); escalate only on concurrent overruns.
                    let mut overrunning = 0usize;
                    for j in pending.iter_mut() {
                        if j.criticality.is_high()
                            && j.executed >= j.budget_lo
                            && !j.remaining.is_zero()
                        {
                            overrunning += 1;
                            if !j.contained {
                                j.contained = true;
                                metrics.task_level_switches += 1;
                            }
                        }
                    }
                    overrunning >= 2
                }
            };
            if escalate {
                mode = Criticality::Hi;
                hi_entered_at = Some(clock);
                metrics.mode_switches += 1;
                apply_lc_policy(&mut pending, tasks, cfg.lc_policy, &mut metrics);
            }
        }

        // 3. Deadline misses: any unfinished job past its absolute deadline
        // is killed and counted.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].abs_deadline <= clock && !pending[i].remaining.is_zero() {
                let j = pending.swap_remove(i);
                match j.criticality {
                    Criticality::Hi => metrics.hc_deadline_misses += 1,
                    Criticality::Lo => metrics.lc_deadline_misses += 1,
                }
            } else {
                i += 1;
            }
        }
        // A killed HC job may have been the last HC work.
        if mode == Criticality::Hi && !pending.iter().any(|p| p.criticality.is_high()) {
            mode = Criticality::Lo;
            if let Some(t0) = hi_entered_at.take() {
                metrics.time_in_hi += clock - t0;
            }
        }

        // 4. Releases due now.
        for (idx, task) in tasks.iter().enumerate() {
            if next_release[idx] != clock {
                continue;
            }
            // Sporadic semantics: the period is the *minimum* separation;
            // jitter pushes the next release later, never earlier.
            let jitter = if cfg.release_jitter.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_nanos(rng.random_range(0..=cfg.release_jitter.as_nanos()))
            };
            next_release[idx] = clock + task.period() + jitter;
            if task.criticality().is_low() && mode == Criticality::Hi {
                match cfg.lc_policy {
                    LcPolicy::DropAll => {
                        metrics.lc_rejected_in_hi += 1;
                        continue;
                    }
                    LcPolicy::Degrade(_) => {}
                }
            }
            let mut exec = cfg.exec_model.draw(task, &mut rng);
            let mut degraded = false;
            if task.criticality().is_low() && mode == Criticality::Hi {
                if let LcPolicy::Degrade(f) = cfg.lc_policy {
                    let budget = task.c_lo().mul_f64(f).max(Duration::from_nanos(1));
                    if exec > budget {
                        exec = budget;
                        degraded = true;
                    }
                }
            }
            let release = clock;
            let abs_deadline = release + task.deadline();
            let virtual_deadline = if task.is_high() {
                release + edf_vd::virtual_deadline(task, x)
            } else {
                abs_deadline
            };
            match task.criticality() {
                Criticality::Hi => metrics.hc_released += 1,
                Criticality::Lo => metrics.lc_released += 1,
            }
            pending.push(Job {
                task_idx: idx,
                criticality: task.criticality(),
                abs_deadline,
                virtual_deadline,
                remaining: exec,
                executed: Duration::ZERO,
                budget_lo: task.c_lo(),
                degraded,
                contained: false,
            });
        }
    }

    if let Some(t0) = hi_entered_at {
        metrics.time_in_hi += clock.min(horizon) - t0;
    }
    Ok(metrics)
}

/// Applies the LC policy at the instant of a LO → HI switch.
fn apply_lc_policy(
    pending: &mut Vec<Job>,
    tasks: &[mc_task::McTask],
    policy: LcPolicy,
    metrics: &mut SimMetrics,
) {
    match policy {
        LcPolicy::DropAll => {
            let before = pending.len();
            pending.retain(|j| j.criticality.is_high());
            metrics.lc_dropped_at_switch += (before - pending.len()) as u64;
        }
        LcPolicy::Degrade(f) => {
            for j in pending.iter_mut() {
                if j.criticality.is_high() {
                    continue;
                }
                let budget = tasks[j.task_idx]
                    .c_lo()
                    .mul_f64(f)
                    .max(Duration::from_nanos(1));
                if j.executed >= budget {
                    // Already consumed its degraded budget: finish now.
                    j.remaining = Duration::ZERO;
                    j.degraded = true;
                } else {
                    let allowed = budget - j.executed;
                    if j.remaining > allowed {
                        j.remaining = allowed;
                        j.degraded = true;
                    }
                }
            }
            // Jobs whose remaining collapsed to zero complete immediately.
            let mut i = 0;
            while i < pending.len() {
                if pending[i].criticality.is_low() && pending[i].remaining.is_zero() {
                    metrics.lc_degraded += 1;
                    pending.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::task::{McTask, TaskId};

    fn hc(id: u32, c_lo_ms: u64, c_hi_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(c_hi_ms))
            .build()
            .unwrap()
    }

    fn lc(id: u32, c_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_ms))
            .build()
            .unwrap()
    }

    fn cfg(model: JobExecModel) -> SimConfig {
        SimConfig {
            horizon: Duration::from_secs(10),
            lc_policy: LcPolicy::DropAll,
            exec_model: model,
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed: 42,
        }
    }

    /// A set satisfying Eq. 8: u_hc_lo = 0.2, u_hc_hi = 0.5, u_lc_lo = 0.3.
    fn schedulable_set() -> TaskSet {
        TaskSet::from_tasks(vec![hc(0, 20, 50, 100), lc(1, 30, 100)]).unwrap()
    }

    #[test]
    fn no_overruns_means_no_switches_and_no_misses() {
        let m = simulate(&schedulable_set(), &cfg(JobExecModel::FullLoBudget)).unwrap();
        assert_eq!(m.mode_switches, 0);
        assert_eq!(m.hc_deadline_misses, 0);
        assert_eq!(m.lc_deadline_misses, 0);
        assert_eq!(m.time_in_hi, Duration::ZERO);
        // 10 s horizon, 100 ms periods → 100 jobs each.
        assert_eq!(m.hc_released, 100);
        assert_eq!(m.lc_released, 100);
        assert_eq!(m.hc_completed, 100);
        assert_eq!(m.lc_completed, 100);
        // Busy time = 100·(20+30) ms = 5 s.
        assert_eq!(m.busy_time, Duration::from_secs(5));
    }

    #[test]
    fn constant_overrun_switches_every_period_and_never_misses_hc() {
        // Every HC job runs to C_HI: the system lives at the Eq. 8 boundary.
        let m = simulate(&schedulable_set(), &cfg(JobExecModel::FullHiBudget)).unwrap();
        assert!(m.mode_switches > 0);
        assert_eq!(
            m.hc_deadline_misses, 0,
            "EDF-VD must protect HC tasks on an Eq. 8-satisfying set"
        );
        assert!(m.lc_lost() > 0, "drop-all must discard LC work in HI mode");
        assert!(m.time_in_hi > Duration::ZERO);
    }

    #[test]
    fn switch_rate_tracks_overrun_probability() {
        let mut c = cfg(JobExecModel::OverrunWithProbability(0.2));
        c.horizon = Duration::from_secs(100); // 1000 HC jobs
        let m = simulate(&schedulable_set(), &c).unwrap();
        // One HC task: switch rate per HC job ≈ per-job overrun probability.
        let rate = m.switch_rate_per_hc_job();
        assert!((rate - 0.2).abs() < 0.05, "rate {rate}");
        assert_eq!(m.hc_deadline_misses, 0);
    }

    #[test]
    fn overloaded_lo_mode_misses_deadlines_under_plain_edf() {
        // u_lo = 0.6 + 0.6 > 1: plain EDF (x = 1) cannot keep up.
        let ts = TaskSet::from_tasks(vec![lc(0, 60, 100), lc(1, 60, 100)]).unwrap();
        let mut c = cfg(JobExecModel::FullLoBudget);
        c.x_factor = Some(1.0);
        let m = simulate(&ts, &c).unwrap();
        assert!(m.lc_deadline_misses > 0);
    }

    #[test]
    fn edf_vd_protects_hc_with_carryover() {
        // A multi-HC-task set at Eq. 8's edge: EDF-VD must still protect
        // carried-over HC work when every job overruns.
        // u_hc_lo = 0.3, u_hc_hi = 0.6 (two tasks), u_lc_lo = 0.4.
        let ts = TaskSet::from_tasks(vec![hc(0, 15, 30, 50), hc(1, 30, 60, 200), lc(2, 40, 100)])
            .unwrap();
        let vd = simulate(&ts, &cfg(JobExecModel::FullHiBudget)).unwrap();
        assert_eq!(vd.hc_deadline_misses, 0, "EDF-VD protects HC");
    }

    #[test]
    fn degrade_policy_keeps_lc_running() {
        let mut c = cfg(JobExecModel::FullHiBudget);
        c.lc_policy = LcPolicy::Degrade(0.5);
        let m = simulate(&schedulable_set(), &c).unwrap();
        assert_eq!(m.lc_dropped_at_switch, 0);
        assert_eq!(m.lc_rejected_in_hi, 0);
        assert!(m.lc_degraded > 0, "HI-mode LC jobs run degraded");
    }

    #[test]
    fn drop_all_rejects_lc_releases_in_hi_mode() {
        // HC task stuck in HI mode with long busy periods.
        let ts = TaskSet::from_tasks(vec![hc(0, 10, 80, 100), lc(1, 10, 20)]).unwrap();
        let m = simulate(&ts, &cfg(JobExecModel::FullHiBudget)).unwrap();
        assert!(m.lc_rejected_in_hi > 0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let c = cfg(JobExecModel::Profile);
        let ts = schedulable_set();
        let a = simulate(&ts, &c).unwrap();
        let b = simulate(&ts, &c).unwrap();
        assert_eq!(a, b);
        let mut c2 = c;
        c2.seed = 43;
        let d = simulate(&ts, &c2).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn job_conservation_holds() {
        for model in [
            JobExecModel::FullLoBudget,
            JobExecModel::FullHiBudget,
            JobExecModel::Profile,
            JobExecModel::OverrunWithProbability(0.3),
        ] {
            let m = simulate(&schedulable_set(), &cfg(model)).unwrap();
            // Completions + losses + misses never exceed releases; the
            // remainder is in-flight at the horizon.
            let accounted = m.hc_completed
                + m.lc_completed
                + m.lc_degraded
                + m.lc_dropped_at_switch
                + m.hc_deadline_misses
                + m.lc_deadline_misses;
            assert!(
                accounted <= m.released(),
                "model {model:?}: accounted {accounted} > released {}",
                m.released()
            );
            assert!(m.released() - accounted <= 2, "too many in-flight jobs");
            assert!(m.busy_time <= m.horizon);
            assert!(m.time_in_hi <= m.horizon);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ts = schedulable_set();
        let mut c = cfg(JobExecModel::FullLoBudget);
        c.horizon = Duration::ZERO;
        assert!(simulate(&ts, &c).is_err());

        let mut c = cfg(JobExecModel::FractionOfLo(2.0));
        c.horizon = Duration::from_secs(1);
        assert!(simulate(&ts, &c).is_err());

        let mut c = cfg(JobExecModel::FullLoBudget);
        c.lc_policy = LcPolicy::Degrade(1.5);
        assert!(simulate(&ts, &c).is_err());

        let mut c = cfg(JobExecModel::FullLoBudget);
        c.x_factor = Some(0.0);
        assert!(simulate(&ts, &c).is_err());

        assert!(matches!(
            simulate(&TaskSet::new(), &cfg(JobExecModel::FullLoBudget)).unwrap_err(),
            SchedError::EmptyTaskSet
        ));
    }

    #[test]
    fn task_level_policy_contains_a_single_overrunning_task() {
        // One HC task: overruns can never be concurrent, so containment
        // must absorb every one of them — no system switch, LC untouched.
        let mut c = cfg(JobExecModel::FullHiBudget);
        c.mode_switch = ModeSwitchPolicy::TaskLevelThenSystem;
        let m = simulate(&schedulable_set(), &c).unwrap();
        assert_eq!(m.mode_switches, 0);
        assert!(m.task_level_switches > 0);
        assert_eq!(m.task_level_switches, m.hc_released);
        assert_eq!(m.time_in_hi, Duration::ZERO);
        assert_eq!(m.lc_lost(), 0, "contained overruns never touch LC work");
        assert_eq!(m.lc_completed, 100);
        assert_eq!(m.hc_deadline_misses, 0);
    }

    #[test]
    fn concurrent_overruns_escalate_to_a_system_switch() {
        // Two HC tasks shaped so a short-period task overruns while a
        // long, contained job is still pending.
        let ts = TaskSet::from_tasks(vec![hc(0, 20, 100, 200), hc(1, 10, 20, 30)]).unwrap();
        let mut c = cfg(JobExecModel::FullHiBudget);
        c.mode_switch = ModeSwitchPolicy::TaskLevelThenSystem;
        let m = simulate(&ts, &c).unwrap();
        assert!(m.task_level_switches > 0, "first overruns are contained");
        assert!(m.mode_switches > 0, "concurrent overruns must escalate");
        assert!(m.time_in_hi > Duration::ZERO);
    }

    #[test]
    fn system_policy_never_counts_task_level_switches() {
        // The default policy is byte-identical to the pre-seam simulator;
        // in particular the new counter stays zero.
        let m = simulate(&schedulable_set(), &cfg(JobExecModel::FullHiBudget)).unwrap();
        assert!(m.mode_switches > 0);
        assert_eq!(m.task_level_switches, 0);
    }

    #[test]
    fn release_jitter_thins_the_release_stream() {
        let ts = schedulable_set();
        let mut c = cfg(JobExecModel::FullLoBudget);
        c.release_jitter = Duration::from_millis(50); // up to half a period
        let jittered = simulate(&ts, &c).unwrap();
        let mut c0 = cfg(JobExecModel::FullLoBudget);
        c0.release_jitter = Duration::ZERO;
        let periodic = simulate(&ts, &c0).unwrap();
        // Sporadic releases are strictly sparser than periodic ones.
        assert!(jittered.released() < periodic.released());
        assert!(jittered.released() > periodic.released() / 2);
        // Sparser demand cannot create misses on a schedulable set.
        assert_eq!(jittered.hc_deadline_misses, 0);
        assert_eq!(jittered.lc_deadline_misses, 0);
    }

    #[test]
    fn zero_jitter_is_the_periodic_baseline() {
        let ts = schedulable_set();
        let c = cfg(JobExecModel::Profile); // default jitter is ZERO
        let a = simulate(&ts, &c).unwrap();
        let mut c2 = c;
        c2.release_jitter = Duration::ZERO;
        let b = simulate(&ts, &c2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn half_budget_jobs_idle_half_the_time() {
        let ts = TaskSet::from_tasks(vec![lc(0, 50, 100)]).unwrap();
        let m = simulate(&ts, &cfg(JobExecModel::FractionOfLo(0.5))).unwrap();
        // 0.5·50 ms per 100 ms period → utilization 0.25.
        assert!((m.utilization() - 0.25).abs() < 0.01);
        assert_eq!(m.lc_completed, 100);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::SeedableRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn random_schedulable_sets_never_miss_hc(seed in 0u64..5_000) {
                // Generate a set, verify Eq. 8 holds with C_LO = C_HI·frac,
                // then hammer it with constant overruns.
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let gen_cfg = mc_task::generate::GeneratorConfig::default();
                let mut ts = mc_task::generate::generate_mixed_taskset(0.6, &gen_cfg, &mut rng)
                    .unwrap();
                // Assign optimistic WCETs at 40 % of pessimistic.
                for t in ts.hc_tasks_mut() {
                    let c = t.c_hi().mul_f64(0.4).max(Duration::from_nanos(1));
                    t.set_c_lo(c).unwrap();
                }
                prop_assume!(crate::analysis::edf_vd::analyze(&ts).schedulable);
                let c = SimConfig {
                    horizon: Duration::from_secs(20),
                    lc_policy: LcPolicy::DropAll,
                    exec_model: JobExecModel::FullHiBudget,
                    x_factor: None,
                    release_jitter: Duration::ZERO,
                    mode_switch: ModeSwitchPolicy::System,
                    seed,
                };
                let m = simulate(&ts, &c).unwrap();
                prop_assert_eq!(m.hc_deadline_misses, 0);
            }

            #[test]
            fn busy_time_bounded_by_horizon(seed in 0u64..2_000) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let gen_cfg = mc_task::generate::GeneratorConfig::default();
                let ts = mc_task::generate::generate_mixed_taskset(0.7, &gen_cfg, &mut rng)
                    .unwrap();
                let c = SimConfig {
                    horizon: Duration::from_secs(5),
                    lc_policy: LcPolicy::Degrade(0.5),
                    exec_model: JobExecModel::Profile,
                    x_factor: None,
                    release_jitter: Duration::ZERO,
                    mode_switch: ModeSwitchPolicy::System,
                    seed,
                };
                let m = simulate(&ts, &c).unwrap();
                prop_assert!(m.busy_time <= m.horizon);
                prop_assert!(m.time_in_hi <= m.horizon);
            }
        }
    }
}
