//! Per-job execution-time models for simulation.

use mc_task::time::Duration;
use mc_task::McTask;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the simulator draws each job's actual execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobExecModel {
    /// Every job runs exactly its LO-mode budget `C_LO`: the boundary case
    /// that never overruns.
    FullLoBudget,
    /// Every HC job runs its full pessimistic budget `C_HI` (LC jobs run
    /// `C_LO`): the adversarial case that overruns immediately.
    FullHiBudget,
    /// Every job runs a deterministic fraction of `C_LO`.
    FractionOfLo(f64),
    /// Sample from the task's attached execution profile: the fitted
    /// three-parameter Weibull (inverse-CDF draw) when the profile carries
    /// one — the automotive workload family's heavy-tailed law — otherwise
    /// a normal with the profile's `(ACET, σ)`. Either way the draw is
    /// clamped into `[1 ns, C_HI]`. Tasks without a profile draw uniformly
    /// from `[½·C_LO, C_LO]`.
    Profile,
    /// Each HC job overruns `C_LO` with the given probability (running to
    /// `C_HI` when it does, 90 % of `C_LO` otherwise); LC jobs run 90 % of
    /// `C_LO`. Useful for controlled mode-switch-rate experiments.
    OverrunWithProbability(f64),
}

impl JobExecModel {
    /// Validates model parameters (fractions and probabilities in `[0, 1]`).
    pub fn is_valid(&self) -> bool {
        match self {
            JobExecModel::FullLoBudget | JobExecModel::FullHiBudget | JobExecModel::Profile => true,
            JobExecModel::FractionOfLo(f) => f.is_finite() && (0.0..=1.0).contains(f),
            JobExecModel::OverrunWithProbability(p) => p.is_finite() && (0.0..=1.0).contains(p),
        }
    }

    /// Draws one job's execution time for `task`.
    ///
    /// The result is always in `[1 ns, C_HI]` — a sound pessimistic WCET is
    /// never exceeded.
    pub fn draw<R: Rng + ?Sized>(&self, task: &McTask, rng: &mut R) -> Duration {
        let one = Duration::from_nanos(1);
        let clamp = |d: Duration| d.clamp(one, task.c_hi());
        match self {
            JobExecModel::FullLoBudget => clamp(task.c_lo()),
            JobExecModel::FullHiBudget => {
                if task.is_high() {
                    clamp(task.c_hi())
                } else {
                    clamp(task.c_lo())
                }
            }
            JobExecModel::FractionOfLo(f) => clamp(task.c_lo().mul_f64(*f)),
            JobExecModel::Profile => match task.profile() {
                Some(p) => {
                    let sigma = p.sigma().max(0.0);
                    let x = if let Some(fit) = p.weibull() {
                        // Heavy-tailed fitted law: one uniform draw through
                        // the inverse CDF, open at 1 so the quantile stays
                        // finite (the C_HI clamp truncates the tail).
                        let u: f64 = loop {
                            let u: f64 = rng.random();
                            if u < 1.0 {
                                break u;
                            }
                        };
                        fit.quantile(u)
                    } else if sigma == 0.0 {
                        p.acet()
                    } else {
                        // Box–Muller normal draw around the profile.
                        let u1: f64 = loop {
                            let u: f64 = rng.random();
                            if u > 0.0 {
                                break u;
                            }
                        };
                        let u2: f64 = rng.random();
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        p.acet() + sigma * z
                    };
                    clamp(Duration::try_from_nanos_f64_ceil(x.max(1.0)).unwrap_or(task.c_hi()))
                }
                None => {
                    let f = 0.5 + 0.5 * rng.random::<f64>();
                    clamp(task.c_lo().mul_f64(f))
                }
            },
            JobExecModel::OverrunWithProbability(p) => {
                if task.is_high() && rng.random::<f64>() < *p {
                    clamp(task.c_hi())
                } else {
                    clamp(task.c_lo().mul_f64(0.9))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::{Criticality, ExecutionProfile, TaskId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hc_task() -> McTask {
        McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .build()
            .unwrap()
    }

    fn lc_task() -> McTask {
        McTask::builder(TaskId::new(1))
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .build()
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(JobExecModel::FullLoBudget.is_valid());
        assert!(JobExecModel::FractionOfLo(0.5).is_valid());
        assert!(!JobExecModel::FractionOfLo(1.5).is_valid());
        assert!(!JobExecModel::FractionOfLo(f64::NAN).is_valid());
        assert!(JobExecModel::OverrunWithProbability(0.0).is_valid());
        assert!(!JobExecModel::OverrunWithProbability(-0.1).is_valid());
    }

    #[test]
    fn deterministic_models() {
        let mut rng = StdRng::seed_from_u64(0);
        let hc = hc_task();
        let lc = lc_task();
        assert_eq!(
            JobExecModel::FullLoBudget.draw(&hc, &mut rng),
            Duration::from_millis(10)
        );
        assert_eq!(
            JobExecModel::FullHiBudget.draw(&hc, &mut rng),
            Duration::from_millis(40)
        );
        assert_eq!(
            JobExecModel::FullHiBudget.draw(&lc, &mut rng),
            Duration::from_millis(10)
        );
        assert_eq!(
            JobExecModel::FractionOfLo(0.5).draw(&hc, &mut rng),
            Duration::from_millis(5)
        );
        // Fraction zero still takes at least one nanosecond.
        assert_eq!(
            JobExecModel::FractionOfLo(0.0).draw(&hc, &mut rng),
            Duration::from_nanos(1)
        );
    }

    #[test]
    fn overrun_probability_model_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let hc = hc_task();
        let model = JobExecModel::OverrunWithProbability(0.3);
        let mut overruns = 0;
        let n = 10_000;
        for _ in 0..n {
            if model.draw(&hc, &mut rng) > hc.c_lo() {
                overruns += 1;
            }
        }
        let rate = overruns as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        // LC jobs never overrun their own budget.
        let lc = lc_task();
        for _ in 0..100 {
            assert!(model.draw(&lc, &mut rng) <= lc.c_lo());
        }
    }

    #[test]
    fn profile_model_respects_bounds_and_moments() {
        let profile = ExecutionProfile::new(5_000_000.0, 1_000_000.0, 40_000_000.0).unwrap();
        let task = McTask::builder(TaskId::new(2))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .profile(profile)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = mc_stats::summary::OnlineSummary::new();
        for _ in 0..20_000 {
            let d = JobExecModel::Profile.draw(&task, &mut rng);
            assert!(d >= Duration::from_nanos(1) && d <= task.c_hi());
            acc.push(d.as_nanos() as f64).unwrap();
        }
        let s = acc.finish().unwrap();
        assert!((s.mean() - 5.0e6).abs() < 5e4);
        assert!((s.std_dev() - 1.0e6).abs() < 5e4);
    }

    #[test]
    fn profile_model_prefers_the_fitted_weibull_law() {
        use mc_task::WeibullFit;
        // k = 1 (exponential): mean = location + scale = 3 ms, easy to
        // check against the empirical mean of the clamped draw.
        let fit = WeibullFit {
            location: 1_000_000.0,
            shape: 1.0,
            scale: 2_000_000.0,
        };
        let profile = ExecutionProfile::new(3_000_000.0, 2_000_000.0, 40_000_000.0)
            .unwrap()
            .with_weibull(fit)
            .unwrap();
        let task = McTask::builder(TaskId::new(4))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .profile(profile)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut acc = mc_stats::summary::OnlineSummary::new();
        let location = Duration::from_nanos(1_000_000);
        for _ in 0..20_000 {
            let d = JobExecModel::Profile.draw(&task, &mut rng);
            assert!(d >= location && d <= task.c_hi(), "draw {d:?}");
            acc.push(d.as_nanos() as f64).unwrap();
        }
        let s = acc.finish().unwrap();
        // The C_HI clamp trims a ~3e-9 tail; the mean stays on the fit.
        assert!((s.mean() - 3.0e6).abs() / 3.0e6 < 0.03, "mean {}", s.mean());
        // Skewed right: median well below the mean, unlike the normal path.
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut below = 0usize;
        for _ in 0..20_000 {
            if JobExecModel::Profile.draw(&task, &mut rng2).as_nanos() as f64 <= 3.0e6 {
                below += 1;
            }
        }
        assert!(below as f64 / 20_000.0 > 0.6, "not right-skewed: {below}");
    }

    #[test]
    fn profile_model_without_profile_uses_half_to_full_budget() {
        let task = lc_task();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let d = JobExecModel::Profile.draw(&task, &mut rng);
            assert!(d >= task.c_lo().mul_f64(0.5) && d <= task.c_lo());
        }
    }
}
