//! Simulation outcome metrics.

use mc_task::time::Duration;
use serde::{Deserialize, Serialize};

/// Counters and clocks collected over one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimMetrics {
    /// HC jobs released.
    pub hc_released: u64,
    /// LC jobs released (admitted to the ready queue).
    pub lc_released: u64,
    /// HC jobs that completed.
    pub hc_completed: u64,
    /// LC jobs that completed with their full budget.
    pub lc_completed: u64,
    /// LC jobs that completed with a degraded (truncated) budget.
    pub lc_degraded: u64,
    /// LC jobs discarded while ready when the system switched to HI mode.
    pub lc_dropped_at_switch: u64,
    /// LC releases rejected because the system was in HI mode.
    pub lc_rejected_in_hi: u64,
    /// HC deadline misses (a sound design never has any).
    pub hc_deadline_misses: u64,
    /// LC deadline misses.
    pub lc_deadline_misses: u64,
    /// LO → HI transitions (system-level mode switches).
    pub mode_switches: u64,
    /// Overruns contained at task level without a system-level switch
    /// ([`super::ModeSwitchPolicy::TaskLevelThenSystem`] only; absent in
    /// older serialized records, hence the default).
    #[serde(default)]
    pub task_level_switches: u64,
    /// Time spent in HI mode.
    pub time_in_hi: Duration,
    /// Time the processor was busy.
    pub busy_time: Duration,
    /// Total simulated time.
    pub horizon: Duration,
}

impl SimMetrics {
    /// Total jobs released (admitted).
    pub fn released(&self) -> u64 {
        self.hc_released + self.lc_released
    }

    /// Total LC jobs lost to HI mode (discarded or rejected).
    pub fn lc_lost(&self) -> u64 {
        self.lc_dropped_at_switch + self.lc_rejected_in_hi
    }

    /// Fraction of time the processor was busy.
    pub fn utilization(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.busy_time.ratio(self.horizon)
        }
    }

    /// Fraction of time spent in HI mode.
    pub fn hi_fraction(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.time_in_hi.ratio(self.horizon)
        }
    }

    /// Empirical mode-switch rate per released HC job — comparable to the
    /// per-task overrun probabilities the paper analyses.
    pub fn switch_rate_per_hc_job(&self) -> f64 {
        if self.hc_released == 0 {
            0.0
        } else {
            self.mode_switches as f64 / self.hc_released as f64
        }
    }

    /// Fraction of would-be LC work that was lost (dropped, rejected, or
    /// missed) rather than completed in full.
    pub fn lc_loss_rate(&self) -> f64 {
        let attempted = self.lc_released + self.lc_rejected_in_hi;
        if attempted == 0 {
            return 0.0;
        }
        let lost = self.lc_lost() + self.lc_deadline_misses + self.lc_degraded;
        lost as f64 / attempted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = SimMetrics {
            hc_released: 100,
            lc_released: 50,
            mode_switches: 10,
            lc_dropped_at_switch: 5,
            lc_rejected_in_hi: 15,
            busy_time: Duration::from_millis(400),
            time_in_hi: Duration::from_millis(100),
            horizon: Duration::from_millis(1_000),
            ..SimMetrics::default()
        };
        assert_eq!(m.released(), 150);
        assert_eq!(m.lc_lost(), 20);
        assert!((m.utilization() - 0.4).abs() < 1e-12);
        assert!((m.hi_fraction() - 0.1).abs() < 1e-12);
        assert!((m.switch_rate_per_hc_job() - 0.1).abs() < 1e-12);
        assert!((m.lc_loss_rate() - 20.0 / 65.0).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_is_handled() {
        let m = SimMetrics::default();
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.hi_fraction(), 0.0);
        assert_eq!(m.switch_rate_per_hc_job(), 0.0);
        assert_eq!(m.lc_loss_rate(), 0.0);
    }
}
