//! Property tests for the store's canonical-byte contract, driven by the
//! mc-fault harness: `canonical_lines` must be invariant under any
//! permutation of record completion order and any shard striping.

use mc_exp::fault::spec_from_shape;
use mc_exp::{CampaignSpec, Metric, Store, UnitRecord};
use mc_fault::gen::spec_shape;
use mc_fault::{assert_prop, FaultRng, FaultSchedule, PropConfig, SimDisk};

fn unit_record(spec: &CampaignSpec, index: usize) -> UnitRecord {
    let u = spec.unit(index);
    UnitRecord {
        unit: u.index,
        point: u.point,
        replica: u.replica,
        seed: u.seed,
        metrics: vec![Metric::new("objective", (u.seed % 997) as f64 / 997.0)],
    }
}

/// Reference rendering: every unit appended in index order, in memory.
fn reference_canonical(spec: &CampaignSpec) -> String {
    let mut store = Store::in_memory(spec);
    for index in 0..spec.total_units() {
        store.append(unit_record(spec, index)).unwrap();
    }
    store.canonical_lines()
}

#[test]
fn canonical_lines_invariant_under_completion_order() {
    assert_prop(
        &PropConfig::named("canonical-vs-permutation").cases(100),
        |rng| rng.next_u64(),
        |&scenario| {
            let mut rng = FaultRng::new(scenario);
            let spec = spec_from_shape("perm-prop", &spec_shape(&mut rng));
            let perm = rng.permutation(spec.total_units());

            // Drive the permuted run through a (fault-free) simulated
            // disk so the full resume/append I/O path is exercised, not
            // just the in-memory bookkeeping.
            let disk = SimDisk::new();
            disk.set_schedule(FaultSchedule::none());
            let (mut store, _) = Store::create_or_resume_io(Box::new(disk.open()), "<perm>", &spec)
                .map_err(|e| e.to_string())?;
            for &index in &perm {
                store
                    .append(unit_record(&spec, index))
                    .map_err(|e| e.to_string())?;
            }
            if store.canonical_lines() != reference_canonical(&spec) {
                return Err(format!(
                    "canonical bytes depend on completion order {perm:?}"
                ));
            }
            // And a resume of the permuted store renders identically too.
            drop(store);
            disk.recover();
            let (resumed, info) =
                Store::create_or_resume_io(Box::new(disk.open()), "<perm>", &spec)
                    .map_err(|e| e.to_string())?;
            if !info.resumed || info.replayed != spec.total_units() {
                return Err(format!("resume replayed {} units", info.replayed));
            }
            if resumed.canonical_lines() != reference_canonical(&spec) {
                return Err("resumed store renders different canonical bytes".into());
            }
            Ok(())
        },
    );
}

#[test]
fn canonical_lines_invariant_under_shard_striping() {
    assert_prop(
        &PropConfig::named("canonical-vs-striping").cases(100),
        |rng| rng.next_u64(),
        |&scenario| {
            let mut rng = FaultRng::new(scenario);
            let spec = spec_from_shape("stripe-prop", &spec_shape(&mut rng));
            let shards = rng.range_u64(1, 4) as usize;
            // Arbitrary striping: every unit goes to a random shard, and
            // each shard completes its units in a random order.
            let assignment: Vec<usize> = (0..spec.total_units())
                .map(|_| rng.below(shards as u64) as usize)
                .collect();
            let mut stores = Vec::new();
            for shard in 0..shards {
                let mut units: Vec<usize> = (0..spec.total_units())
                    .filter(|&u| assignment[u] == shard)
                    .collect();
                let perm = rng.permutation(units.len());
                units = perm.iter().map(|&i| units[i]).collect();
                let mut store = Store::in_memory(&spec);
                for index in units {
                    store
                        .append(unit_record(&spec, index))
                        .map_err(|e| e.to_string())?;
                }
                stores.push(store);
            }
            let merged = Store::merge(&stores).map_err(|e| e.to_string())?;
            if merged.canonical_lines() != reference_canonical(&spec) {
                return Err(format!(
                    "canonical bytes depend on striping {assignment:?} over {shards} shards"
                ));
            }
            Ok(())
        },
    );
}
