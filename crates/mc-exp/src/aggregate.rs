//! Per-point aggregation and CSV export.
//!
//! Aggregation sums each metric over a point's replicas *in replica
//! order* before dividing — the same f64 summation order the in-process
//! batch pipeline uses — so a campaign mean is bit-identical to the
//! legacy [`chebymc_core::pipeline::evaluate_policy_over_utilization`]
//! numbers when the runner follows the same seed contract.

use crate::spec::{CampaignSpec, Param};
use crate::store::{Metric, UnitRecord};
use crate::ExpError;

/// The per-point means of a completed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PointAggregate {
    /// Axis-point index.
    pub point: usize,
    /// The point's label.
    pub label: String,
    /// The point's parameters.
    pub params: Vec<Param>,
    /// Replicas averaged.
    pub replicas: usize,
    /// Mean of every metric, in the metric order of the records.
    pub means: Vec<Metric>,
}

impl PointAggregate {
    /// Looks up a mean by metric name.
    #[must_use]
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.means.iter().find(|m| m.name == name).map(|m| m.value)
    }
}

/// Aggregates a campaign's records into per-point means. Every point must
/// be complete (exactly `spec.replicas` records) and every record of a
/// point must carry the same metric names in the same order.
///
/// # Errors
///
/// [`ExpError::Incomplete`] for missing replicas,
/// [`ExpError::Store`] for inconsistent metric sets.
pub fn aggregate(
    spec: &CampaignSpec,
    records: &[UnitRecord],
) -> Result<Vec<PointAggregate>, ExpError> {
    let mut by_point: Vec<Vec<Option<&UnitRecord>>> =
        vec![vec![None; spec.replicas]; spec.points.len()];
    for r in records {
        if r.point >= spec.points.len() || r.replica >= spec.replicas {
            return Err(ExpError::Store {
                path: "<records>".into(),
                detail: format!("record for unit {} is outside the campaign", r.unit),
            });
        }
        by_point[r.point][r.replica] = Some(r);
    }
    let mut out = Vec::with_capacity(spec.points.len());
    for (p, slots) in by_point.iter().enumerate() {
        let missing = slots.iter().filter(|s| s.is_none()).count();
        if missing > 0 {
            return Err(ExpError::Incomplete(format!(
                "point {p} (`{}`) is missing {missing} of {} replicas",
                spec.points[p].label, spec.replicas
            )));
        }
        let first = slots[0].expect("checked complete");
        let names: Vec<&str> = first.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sums = vec![0.0f64; names.len()];
        for slot in slots {
            let r = slot.expect("checked complete");
            let ok = r.metrics.len() == names.len()
                && r.metrics.iter().zip(&names).all(|(m, n)| m.name == *n);
            if !ok {
                return Err(ExpError::Store {
                    path: "<records>".into(),
                    detail: format!(
                        "unit {} reports different metrics than its point's first replica",
                        r.unit
                    ),
                });
            }
            for (sum, m) in sums.iter_mut().zip(&r.metrics) {
                *sum += m.value;
            }
        }
        out.push(PointAggregate {
            point: p,
            label: spec.points[p].label.clone(),
            params: spec.points[p].params.clone(),
            replicas: spec.replicas,
            means: names
                .iter()
                .zip(&sums)
                .map(|(n, s)| Metric::new(*n, s / spec.replicas as f64))
                .collect(),
        });
    }
    Ok(out)
}

/// Escapes one CSV cell (labels can contain commas in principle).
fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Flat per-unit CSV: `unit,point,label,replica,seed,<metrics...>`,
/// sorted by unit index. Metric columns come from the first record;
/// every record must match ([`aggregate`]'s uniformity rule applies per
/// campaign here, since the export is unit-wise).
///
/// # Errors
///
/// [`ExpError::Store`] when records disagree on their metric names.
pub fn export_units_csv(spec: &CampaignSpec, records: &[UnitRecord]) -> Result<String, ExpError> {
    let mut sorted: Vec<&UnitRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.unit);
    let names: Vec<&str> = sorted
        .first()
        .map(|r| r.metrics.iter().map(|m| m.name.as_str()).collect())
        .unwrap_or_default();
    let mut out = String::from("unit,point,label,replica,seed");
    for n in &names {
        out.push(',');
        out.push_str(&csv_cell(n));
    }
    out.push('\n');
    for r in sorted {
        let ok = r.metrics.len() == names.len()
            && r.metrics.iter().zip(&names).all(|(m, n)| m.name == *n);
        if !ok {
            return Err(ExpError::Store {
                path: "<records>".into(),
                detail: format!("unit {} reports a different metric set", r.unit),
            });
        }
        let label = spec
            .points
            .get(r.point)
            .map(|p| p.label.as_str())
            .unwrap_or("");
        out.push_str(&format!(
            "{},{},{},{},{}",
            r.unit,
            r.point,
            csv_cell(label),
            r.replica,
            r.seed
        ));
        for m in &r.metrics {
            out.push_str(&format!(",{}", m.value));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Aggregated CSV: `point,label,replicas,<metric means...>`.
#[must_use]
pub fn export_points_csv(aggregates: &[PointAggregate]) -> String {
    let names: Vec<&str> = aggregates
        .first()
        .map(|a| a.means.iter().map(|m| m.name.as_str()).collect())
        .unwrap_or_default();
    let mut out = String::from("point,label,replicas");
    for n in &names {
        out.push(',');
        out.push_str(&csv_cell(n));
    }
    out.push('\n');
    for a in aggregates {
        out.push_str(&format!(
            "{},{},{}",
            a.point,
            csv_cell(&a.label),
            a.replicas
        ));
        for m in &a.means {
            out.push_str(&format!(",{}", m.value));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PointSpec;
    use crate::store::Store;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "agg-test".into(),
            seed: 3,
            params: vec![],
            points: vec![
                PointSpec::new("p0", vec![Param::new("u", 0.4)]),
                PointSpec::new("p1", vec![Param::new("u", 0.5)]),
            ],
            replicas: 3,
        }
    }

    fn filled_store(s: &CampaignSpec) -> Store {
        let mut store = Store::in_memory(s);
        for i in 0..s.total_units() {
            let u = s.unit(i);
            store
                .append(UnitRecord {
                    unit: u.index,
                    point: u.point,
                    replica: u.replica,
                    seed: u.seed,
                    metrics: vec![Metric::new("a", (i + 1) as f64), Metric::new("b", 0.5)],
                })
                .unwrap();
        }
        store
    }

    #[test]
    fn means_average_in_replica_order() {
        let s = spec();
        let store = filled_store(&s);
        let aggs = aggregate(&s, store.records()).unwrap();
        assert_eq!(aggs.len(), 2);
        // Point 0 holds units 0,1,2 → metric `a` values 1,2,3.
        assert_eq!(aggs[0].mean("a"), Some((1.0 + 2.0 + 3.0) / 3.0));
        assert_eq!(aggs[1].mean("a"), Some((4.0 + 5.0 + 6.0) / 3.0));
        assert_eq!(aggs[0].mean("b"), Some(0.5));
        assert_eq!(aggs[0].label, "p0");
        assert_eq!(aggs[0].mean("missing"), None);
    }

    #[test]
    fn incomplete_points_are_reported_by_label() {
        let s = spec();
        let store = filled_store(&s);
        let partial: Vec<UnitRecord> = store
            .records()
            .iter()
            .filter(|r| r.unit != 4)
            .cloned()
            .collect();
        let err = aggregate(&s, &partial).unwrap_err();
        assert!(matches!(err, ExpError::Incomplete(_)));
        assert!(err.to_string().contains("p1"), "{err}");
    }

    #[test]
    fn inconsistent_metrics_are_rejected() {
        let s = spec();
        let mut records: Vec<UnitRecord> = filled_store(&s).records().to_vec();
        records[2].metrics[0].name = "other".into();
        assert!(matches!(
            aggregate(&s, &records).unwrap_err(),
            ExpError::Store { .. }
        ));
    }

    #[test]
    fn unit_csv_is_sorted_and_labelled() {
        let s = spec();
        let store = filled_store(&s);
        let mut records = store.records().to_vec();
        records.reverse();
        let csv = export_units_csv(&s, &records).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "unit,point,label,replica,seed,a,b");
        assert!(lines[1].starts_with("0,0,p0,0,"));
        assert!(lines[6].starts_with("5,1,p1,2,"));
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn point_csv_lists_means() {
        let s = spec();
        let aggs = aggregate(&s, filled_store(&s).records()).unwrap();
        let csv = export_points_csv(&aggs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "point,label,replicas,a,b");
        assert_eq!(lines[1], "0,p0,3,2,0.5");
    }

    #[test]
    fn csv_cells_escape_commas_and_quotes() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
