//! Throttled campaign progress reporting on stderr.
//!
//! The runner drives one [`Progress`] from inside its in-order flush, so
//! lines reflect *persisted* units (fsync'd records), not merely finished
//! computations. Output is throttled to at most one line per second so a
//! fast campaign does not drown its own results.

use std::io::Write;
use std::time::{Duration, Instant};

/// Minimum interval between progress lines.
const THROTTLE: Duration = Duration::from_secs(1);

/// Progress/ETA reporter for one campaign session.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    campaign_total: usize,
    session_total: usize,
    session_done: usize,
    points_total: usize,
    start: Instant,
    last_emit: Option<Instant>,
}

impl Progress {
    /// Builds a reporter. `campaign_total`/`points_total` size the whole
    /// campaign; `session_total` is this shard's pending unit count.
    /// A disabled reporter never writes.
    #[must_use]
    pub fn new(
        enabled: bool,
        campaign_total: usize,
        points_total: usize,
        session_total: usize,
    ) -> Self {
        Progress {
            enabled,
            campaign_total,
            session_total,
            session_done: 0,
            points_total,
            start: Instant::now(),
            last_emit: None,
        }
    }

    /// Records one persisted unit; emits a throttled status line with the
    /// store-wide completion, the session rate, the ETA for this shard's
    /// remaining units, and how many axis points are fully done.
    pub fn unit_done(&mut self, store_completed: usize, points_done: usize) {
        self.session_done += 1;
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let due = self
            .last_emit
            .is_none_or(|t| now.duration_since(t) >= THROTTLE)
            || self.session_done == self.session_total;
        if !due {
            return;
        }
        self.last_emit = Some(now);
        let elapsed = now.duration_since(self.start).as_secs_f64().max(1e-9);
        let rate = self.session_done as f64 / elapsed;
        let remaining = self.session_total - self.session_done;
        let eta = remaining as f64 / rate.max(1e-9);
        let pct = if self.campaign_total == 0 {
            100.0
        } else {
            100.0 * store_completed as f64 / self.campaign_total as f64
        };
        eprintln!(
            "exp: {store_completed}/{} units ({pct:.1}%) | {rate:.1} units/s | ETA {}s | points done {points_done}/{}",
            self.campaign_total,
            eta.ceil() as u64,
            self.points_total,
        );
        let _ = std::io::stderr().flush();
    }

    /// Emits the final session summary line (always, when enabled, even
    /// if the last throttled line was recent).
    pub fn finish(&self, store_completed: usize) {
        if !self.enabled {
            return;
        }
        eprintln!("{}", self.finish_line(store_completed));
    }

    /// The final summary line. A resume session with nothing pending gets
    /// its own wording — "0/0 pending units in 0.0s" reads like a failure.
    fn finish_line(&self, store_completed: usize) -> String {
        if self.session_total == 0 {
            return format!(
                "exp: nothing pending for this shard; store already holds {store_completed}/{} units",
                self.campaign_total,
            );
        }
        let elapsed = Instant::now().duration_since(self.start).as_secs_f64();
        format!(
            "exp: session ran {}/{} pending units in {elapsed:.1}s; store holds {store_completed}/{} units",
            self.session_done, self.session_total, self.campaign_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_counts_but_stays_silent() {
        let mut p = Progress::new(false, 10, 2, 4);
        for i in 0..4 {
            p.unit_done(i + 1, 0);
        }
        assert_eq!(p.session_done, 4);
        p.finish(4);
    }

    #[test]
    fn enabled_reporter_is_throttled() {
        let mut p = Progress::new(true, 100, 5, 50);
        p.unit_done(1, 0);
        let first = p.last_emit;
        assert!(first.is_some(), "first unit emits immediately");
        p.unit_done(2, 0);
        assert_eq!(p.last_emit, first, "second unit within 1s is suppressed");
    }

    #[test]
    fn zero_pending_session_reports_an_up_to_date_store() {
        // A fully-resumed shard: the campaign holds 10 units, all already
        // persisted, so this session had nothing to do.
        let p = Progress::new(true, 10, 2, 0);
        let line = p.finish_line(10);
        assert_eq!(
            line,
            "exp: nothing pending for this shard; store already holds 10/10 units"
        );
        assert!(!line.contains("0/0"), "no meaningless 0/0 counter: {line}");
    }

    #[test]
    fn non_empty_session_keeps_the_rate_summary() {
        let mut p = Progress::new(true, 10, 2, 4);
        for i in 0..4 {
            p.unit_done(i + 1, 0);
        }
        let line = p.finish_line(4);
        assert!(
            line.contains("session ran 4/4 pending units"),
            "unexpected summary: {line}"
        );
    }

    #[test]
    fn last_unit_always_emits() {
        let mut p = Progress::new(true, 2, 1, 2);
        p.unit_done(1, 0);
        let first = p.last_emit;
        p.unit_done(2, 1);
        assert_ne!(p.last_emit, first, "final unit bypasses the throttle");
    }
}
