//! Campaign specifications: the declarative description of an experiment
//! (axis points × task-set replicas) that expands into a flat list of
//! deterministic work units.
//!
//! A campaign's identity is its [fingerprint](CampaignSpec::fingerprint) —
//! a hash of the canonical spec JSON. The fingerprint is stamped into the
//! result store's header, so resuming with changed flags, merging stores
//! of different campaigns, or sharding with inconsistent specs all fail
//! fast instead of silently mixing incompatible results.

use chebymc_core::pipeline::derive_set_seed;
use serde::{Deserialize, Serialize};

/// One named scalar parameter of an axis point (`u = 0.8`,
/// `policy = 2`, …). Kept as named pairs rather than positional values so
/// the JSONL store is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter value.
    pub value: f64,
}

impl Param {
    /// Builds a parameter.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Param {
            name: name.into(),
            value,
        }
    }
}

/// One point of the campaign axis: a stable label (used in tables and
/// diagnostics) plus the parameters the unit runner consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSpec {
    /// Stable, unique label, e.g. `chebyshev-ga/u0.80`.
    pub label: String,
    /// Named parameters of the point.
    pub params: Vec<Param>,
}

impl PointSpec {
    /// Builds a point.
    pub fn new(label: impl Into<String>, params: Vec<Param>) -> Self {
        PointSpec {
            label: label.into(),
            params,
        }
    }

    /// Looks up a parameter by name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|p| p.name == name).map(|p| p.value)
    }
}

/// A declarative experiment campaign: `points × replicas` work units, each
/// seeded deterministically from the campaign seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (a catalog name for built-ins, e.g. `fig5`).
    pub name: String,
    /// Base seed; every unit derives its own seed from it.
    pub seed: u64,
    /// Campaign-level parameters that change unit results but are not
    /// part of the axis (e.g. `table2`'s sample count). They must be
    /// recorded here so they enter the fingerprint: a store produced at
    /// one scale must refuse to resume at another.
    #[serde(default)]
    pub params: Vec<Param>,
    /// The experiment axis.
    pub points: Vec<PointSpec>,
    /// Task-set replicas per point (the paper uses 1000).
    pub replicas: usize,
}

/// One work unit of a campaign: the `replica`-th task set of the
/// `point`-th axis point.
///
/// `seed = hash(campaign_seed, point, replica)` (the workspace's SplitMix
/// mixing, [`derive_set_seed`]), so any shard subset — or a resumed run —
/// reproduces bit-identical results without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Flat unit index: `point * replicas + replica`.
    pub index: usize,
    /// Axis-point index.
    pub point: usize,
    /// Replica index within the point.
    pub replica: usize,
    /// The unit's derived seed.
    pub seed: u64,
}

/// Derives a work unit's seed from the campaign seed: SplitMix-style
/// mixing of `(point, replica)`, shared with the in-process batch
/// pipelines (see [`derive_set_seed`]).
#[must_use]
pub fn unit_seed(campaign_seed: u64, point: usize, replica: usize) -> u64 {
    derive_set_seed(campaign_seed, point, replica)
}

impl CampaignSpec {
    /// Total number of work units (`points × replicas`).
    #[must_use]
    pub fn total_units(&self) -> usize {
        self.points.len() * self.replicas
    }

    /// Expands flat unit index `index` into a [`WorkUnit`].
    ///
    /// # Panics
    ///
    /// Panics when `index ≥ total_units()` or `replicas == 0`.
    #[must_use]
    pub fn unit(&self, index: usize) -> WorkUnit {
        assert!(index < self.total_units(), "unit index out of range");
        let point = index / self.replicas;
        let replica = index % self.replicas;
        WorkUnit {
            index,
            point,
            replica,
            seed: unit_seed(self.seed, point, replica),
        }
    }

    /// The canonical JSON form the fingerprint hashes: compact, field
    /// order fixed by the struct definition.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none occur in practice).
    pub fn canonical_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// The campaign fingerprint: FNV-1a 64 over the canonical spec JSON,
    /// rendered as 16 hex digits. Two specs agree on their fingerprint
    /// iff they agree on name, seed, axis, and replication — the
    /// compatibility contract for resume, sharding, and merge.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let json = self
            .canonical_json()
            .expect("spec serialization cannot fail");
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }

    /// Builds the `E0xx` lint view of this spec for a given run
    /// configuration (see [`mc_lint::lint_campaign`]).
    #[must_use]
    pub fn check(
        &self,
        shard_index: usize,
        shard_count: usize,
        store_path: Option<&str>,
        export_path: Option<&str>,
    ) -> mc_lint::CampaignCheck {
        mc_lint::CampaignCheck {
            name: self.name.clone(),
            point_labels: self.points.iter().map(|p| p.label.clone()).collect(),
            replicas: self.replicas,
            shard_index,
            shard_count,
            store_path: store_path.map(str::to_string),
            export_path: export_path.map(str::to_string),
        }
    }
}

/// FNV-1a, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "demo".into(),
            seed: 5,
            params: vec![],
            points: vec![
                PointSpec::new("a", vec![Param::new("u", 0.5)]),
                PointSpec::new("b", vec![Param::new("u", 0.8)]),
            ],
            replicas: 3,
        }
    }

    #[test]
    fn units_enumerate_point_major() {
        let s = spec();
        assert_eq!(s.total_units(), 6);
        let u = s.unit(4);
        assert_eq!((u.point, u.replica), (1, 1));
        assert_eq!(u.seed, unit_seed(5, 1, 1));
        let u0 = s.unit(0);
        assert_eq!((u0.point, u0.replica), (0, 0));
    }

    #[test]
    fn unit_seeds_match_the_core_contract() {
        assert_eq!(unit_seed(5, 3, 17), derive_set_seed(5, 3, 17));
        assert_ne!(unit_seed(5, 0, 1), unit_seed(5, 1, 0));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates() {
        let a = spec();
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
        let mut b = spec();
        b.replicas = 4;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = spec();
        c.seed = 6;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = spec();
        d.points[1].params[0].value = 0.9;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = spec();
        e.params.push(Param::new("samples", 20_000.0));
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let json = s.canonical_json().unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fingerprint(), s.fingerprint());
    }

    #[test]
    fn param_lookup() {
        let p = PointSpec::new("x", vec![Param::new("u", 0.5), Param::new("k", 2.0)]);
        assert_eq!(p.param("k"), Some(2.0));
        assert_eq!(p.param("missing"), None);
    }

    #[test]
    fn check_carries_run_configuration() {
        let c = spec().check(1, 4, Some("s.jsonl"), None);
        assert_eq!(c.shard_index, 1);
        assert_eq!(c.shard_count, 4);
        assert_eq!(c.point_labels, vec!["a", "b"]);
        assert!(mc_lint::lint_campaign(&c).is_clean());
    }
}
