//! The crash-safe, append-only JSONL result store.
//!
//! Layout: line 1 is the [`StoreHeader`] (schema version, campaign
//! fingerprint, and the full embedded spec); every further line is one
//! [`UnitRecord`]. Each record is written with a trailing newline and
//! `fsync`'d (`File::sync_data`) before the unit counts as complete, so a
//! crash can lose at most the record being written — never a completed
//! one, and never the store's integrity.
//!
//! On [`Store::create_or_resume`] the store replays itself: a torn or
//! unparseable *last* line (the crash case) is truncated away; a corrupt
//! *interior* line is an error (truncation cannot repair it); a header
//! from a different campaign is a hard mismatch. Everything that replays
//! cleanly marks its unit complete, which is what lets the runner skip
//! finished work and resume mid-campaign.
//!
//! Byte-stability: the vendored `serde_json` prints every `f64` in its
//! shortest round-trippable form and parses it back exactly, so a record
//! survives write → replay → rewrite byte-for-byte. Canonical form
//! ([`Store::canonical_lines`]) sorts records by unit index; two stores
//! of the same campaign that completed the same units are canonically
//! identical regardless of thread count, sharding, or interruption
//! history.

use crate::spec::{unit_seed, CampaignSpec};
use crate::{io_err, label_io_err, ExpError};
use mc_fault::{RealFile, StoreIo};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// Version of the store's on-disk schema. Bumped on any incompatible
/// change to the header or record shape.
pub const SCHEMA_VERSION: u32 = 1;

/// The store's first line: schema version, campaign fingerprint, and the
/// embedded spec (so a store is self-describing — `exp status` needs no
/// other input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreHeader {
    /// On-disk schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// [`CampaignSpec::fingerprint`] of the embedded spec.
    pub fingerprint: String,
    /// The campaign this store belongs to.
    pub spec: CampaignSpec,
}

/// One named result value of a work unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name (e.g. `objective`).
    pub name: String,
    /// Metric value.
    pub value: f64,
}

impl Metric {
    /// Builds a metric.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
        }
    }
}

/// One completed work unit: its coordinates, its derived seed (recorded
/// so replay can cross-check the seed contract), and its metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// Flat unit index (`point * replicas + replica`).
    pub unit: usize,
    /// Axis-point index.
    pub point: usize,
    /// Replica index within the point.
    pub replica: usize,
    /// The unit's derived seed.
    pub seed: u64,
    /// The unit's results.
    pub metrics: Vec<Metric>,
}

/// What [`Store::create_or_resume`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeInfo {
    /// Records replayed from an existing store.
    pub replayed: usize,
    /// Bytes of torn tail truncated away (0 for a clean store).
    pub truncated_bytes: u64,
    /// Whether the file existed with a valid header before this open.
    pub resumed: bool,
}

/// An experiment result store: an in-memory replay of its records plus,
/// for persistent stores, a [`StoreIo`] append handle that fsyncs every
/// record. The handle is a real file for on-disk stores and a simulated
/// disk under fault injection (see `mc_fault::SimDisk`).
#[derive(Debug)]
pub struct Store {
    header: StoreHeader,
    records: Vec<UnitRecord>,
    completed: BTreeSet<usize>,
    io: Option<Box<dyn StoreIo>>,
    /// Display name for error messages: the path for on-disk stores,
    /// `<memory>` or a caller-chosen label otherwise.
    label: String,
    path: Option<PathBuf>,
}

impl Store {
    /// A memory-only store for in-process runs (the bench binaries) —
    /// same validation, no file.
    #[must_use]
    pub fn in_memory(spec: &CampaignSpec) -> Self {
        Store {
            header: StoreHeader {
                schema_version: SCHEMA_VERSION,
                fingerprint: spec.fingerprint(),
                spec: spec.clone(),
            },
            records: Vec::new(),
            completed: BTreeSet::new(),
            io: None,
            label: "<memory>".to_string(),
            path: None,
        }
    }

    /// Opens (or creates) the store at `path` for campaign `spec`.
    ///
    /// A missing or empty file is initialised with a fresh header. An
    /// existing file is replayed: its header must match the spec's
    /// fingerprint and schema version exactly; a torn tail is truncated;
    /// every valid record marks its unit complete.
    ///
    /// # Errors
    ///
    /// I/O failures, interior corruption, or a header from a different
    /// campaign.
    pub fn create_or_resume(
        path: &Path,
        spec: &CampaignSpec,
    ) -> Result<(Self, ResumeInfo), ExpError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        let label = path.display().to_string();
        let (mut store, info) =
            Store::create_or_resume_io(Box::new(RealFile::new(file)), &label, spec)?;
        store.path = Some(path.to_path_buf());
        Ok((store, info))
    }

    /// [`Store::create_or_resume`] over any [`StoreIo`] handle — the
    /// production path goes through a [`RealFile`]; the fault-injection
    /// sweeps hand in a simulated disk. `label` names the store in error
    /// messages.
    ///
    /// # Errors
    ///
    /// I/O failures (real or injected), interior corruption, or a header
    /// from a different campaign.
    pub fn create_or_resume_io(
        mut io: Box<dyn StoreIo>,
        label: &str,
        spec: &CampaignSpec,
    ) -> Result<(Self, ResumeInfo), ExpError> {
        let mut store = Store::in_memory(spec);
        store.label = label.to_string();
        let mut info = ResumeInfo::default();

        let mut bytes = Vec::new();
        io.read_to_end(&mut bytes)
            .map_err(|e| label_io_err(label, e))?;

        let parsed = parse_store_bytes(&bytes, spec, label)?;
        match parsed {
            Parsed::Fresh => {
                // Missing header (empty file or torn header line): start
                // clean. `truncate` leaves the cursor at the new end (0),
                // so the header lands at the start of the file.
                io.truncate(0).map_err(|e| label_io_err(label, e))?;
                write_line(io.as_mut(), label, &store.header)?;
                info.truncated_bytes = bytes.len() as u64;
            }
            Parsed::Replayed { records, good_len } => {
                info.resumed = true;
                info.replayed = records.len();
                info.truncated_bytes = (bytes.len() - good_len) as u64;
                if good_len < bytes.len() {
                    io.truncate(good_len as u64)
                        .map_err(|e| label_io_err(label, e))?;
                    io.sync_data().map_err(|e| label_io_err(label, e))?;
                }
                // Cursor is at end-of-file here by the StoreIo contract
                // (after read_to_end or truncate), so appends continue
                // where the valid content stops.
                for r in records {
                    store.completed.insert(r.unit);
                    store.records.push(r);
                }
            }
        }
        store.io = Some(io);
        Ok((store, info))
    }

    /// Loads a store read-only (for `exp status`, merging, and export).
    /// Tolerates a torn tail in memory without modifying the file. When
    /// `expected` is given, the header must match it.
    ///
    /// # Errors
    ///
    /// I/O failures, a missing/torn header, interior corruption, or a
    /// campaign mismatch.
    pub fn load(path: &Path, expected: Option<&CampaignSpec>) -> Result<Self, ExpError> {
        let display = path.display().to_string();
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let (header, rest) = parse_header(&bytes, &display)?.ok_or_else(|| ExpError::Store {
            path: display.clone(),
            detail: "missing or torn header line".into(),
        })?;
        // With no expected spec, check the header against its own embedded
        // spec — schema version and self-consistent fingerprint still hold.
        check_header(&header, expected.unwrap_or(&header.spec), &display)?;
        let records = parse_records(rest, &header.spec, &display, bytes.len() - rest.len())?.0;
        let mut store = Store {
            header,
            records: Vec::new(),
            completed: BTreeSet::new(),
            io: None,
            label: display,
            path: Some(path.to_path_buf()),
        };
        for r in records {
            store.completed.insert(r.unit);
            store.records.push(r);
        }
        Ok(store)
    }

    /// The store's header.
    #[must_use]
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// The campaign this store belongs to.
    #[must_use]
    pub fn spec(&self) -> &CampaignSpec {
        &self.header.spec
    }

    /// The replayed/appended records, in store order.
    #[must_use]
    pub fn records(&self) -> &[UnitRecord] {
        &self.records
    }

    /// Whether unit `index` already has a record.
    #[must_use]
    pub fn is_complete(&self, index: usize) -> bool {
        self.completed.contains(&index)
    }

    /// Number of completed units.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// The store path, when on disk.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Classifies `record` against what the store already holds for its
    /// unit: `Ok(false)` means the unit is new, `Ok(true)` means an
    /// identical record is already present (a benign duplicate), and a
    /// conflicting payload for the same unit is an error — the shared
    /// judgement behind [`Store::append_dedup`] and [`Store::merge`].
    fn duplicate_of(&self, record: &UnitRecord) -> Result<bool, ExpError> {
        if !self.completed.contains(&record.unit) {
            return Ok(false);
        }
        let existing = self
            .records
            .iter()
            .find(|m| m.unit == record.unit)
            .expect("completed implies a record");
        if existing == record {
            Ok(true)
        } else {
            Err(ExpError::Store {
                path: self.label.clone(),
                detail: format!("unit {} has conflicting records", record.unit),
            })
        }
    }

    /// Appends one record: validates it against the spec, writes its line,
    /// and `fsync`s before returning — once this returns `Ok`, the unit
    /// survives any crash.
    ///
    /// # Errors
    ///
    /// Duplicate or out-of-contract records, and I/O failures.
    pub fn append(&mut self, record: UnitRecord) -> Result<(), ExpError> {
        let _append_span = mc_obs::span("store.append");
        let display = self.label.clone();
        validate_record(&record, &self.header.spec, &display)?;
        if self.completed.contains(&record.unit) {
            return Err(ExpError::Store {
                path: display,
                detail: format!("duplicate record for unit {}", record.unit),
            });
        }
        if let Some(io) = self.io.as_mut() {
            let mut line = serde_json::to_string(&record).map_err(|e| ExpError::Store {
                path: display.clone(),
                detail: format!("record serialization failed: {e}"),
            })?;
            line.push('\n');
            io.write_all(line.as_bytes())
                .map_err(|e| label_io_err(&display, e))?;
            {
                // fsync dominates append cost on real disks; give it its
                // own span (and latency histogram) so `trace summary`
                // separates storage stalls from compute.
                let _fsync_span = mc_obs::span("store.fsync");
                let t0 = mc_obs::is_enabled().then(mc_obs::now_ns);
                io.sync_data().map_err(|e| label_io_err(&display, e))?;
                if let Some(t0) = t0 {
                    mc_obs::record_f64(
                        "store.fsync_ns",
                        mc_obs::now_ns().saturating_sub(t0) as f64,
                    );
                }
            }
        }
        self.completed.insert(record.unit);
        self.records.push(record);
        Ok(())
    }

    /// [`Store::append`] with at-least-once semantics: an identical record
    /// for an already-complete unit is silently skipped (`Ok(false)`), a
    /// *conflicting* record for it is an error, and a new unit appends as
    /// usual (`Ok(true)`). This is what lets a coordinator accept lease
    /// redeliveries — a reclaimed-and-reassigned shard may legally resend
    /// units its dead first owner already committed.
    ///
    /// # Errors
    ///
    /// Conflicting duplicates, out-of-contract records, and I/O failures.
    pub fn append_dedup(&mut self, record: UnitRecord) -> Result<bool, ExpError> {
        validate_record(&record, &self.header.spec, &self.label)?;
        if self.duplicate_of(&record)? {
            return Ok(false);
        }
        self.append(record)?;
        Ok(true)
    }

    /// The store's canonical text: the header line followed by every
    /// record sorted by unit index. Two stores of the same campaign with
    /// the same completed units render identically — the byte-identity
    /// form behind `exp merge` and the resume-correctness tests.
    #[must_use]
    pub fn canonical_lines(&self) -> String {
        let mut sorted: Vec<&UnitRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| r.unit);
        let mut out = serde_json::to_string(&self.header).expect("header serialization");
        out.push('\n');
        for r in sorted {
            out.push_str(&serde_json::to_string(r).expect("record serialization"));
            out.push('\n');
        }
        out
    }

    /// Merges several stores of the *same campaign* into one in-memory
    /// store: fingerprints must agree, identical duplicate records dedup,
    /// conflicting records for the same unit are an error.
    ///
    /// # Errors
    ///
    /// Campaign mismatches or conflicting duplicates.
    pub fn merge(stores: &[Store]) -> Result<Store, ExpError> {
        let first = stores
            .first()
            .ok_or_else(|| ExpError::Config("merge needs at least one store".into()))?;
        let mut merged = Store::in_memory(first.spec());
        for s in stores {
            let display = s.label.clone();
            check_header(&s.header, first.spec(), &display)?;
            for r in &s.records {
                // Re-attribute conflicts to the store being folded in, not
                // the in-memory accumulator — the user needs to know which
                // input file disagrees.
                match merged.duplicate_of(r) {
                    Ok(true) => {}
                    Ok(false) => {
                        merged.completed.insert(r.unit);
                        merged.records.push(r.clone());
                    }
                    Err(ExpError::Store { detail, .. }) => {
                        return Err(ExpError::Store {
                            path: display,
                            detail: format!("{detail} across stores"),
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(merged)
    }
}

/// Serializes `value` as one JSON line, writes it, and fsyncs.
fn write_line<T: Serialize>(io: &mut dyn StoreIo, label: &str, value: &T) -> Result<(), ExpError> {
    let mut line = serde_json::to_string(value).map_err(|e| ExpError::Store {
        path: label.to_string(),
        detail: format!("serialization failed: {e}"),
    })?;
    line.push('\n');
    io.write_all(line.as_bytes())
        .map_err(|e| label_io_err(label, e))?;
    io.sync_data().map_err(|e| label_io_err(label, e))?;
    Ok(())
}

enum Parsed {
    /// No usable header: initialise a fresh store.
    Fresh,
    /// A valid header for this campaign plus its replayable records.
    Replayed {
        records: Vec<UnitRecord>,
        /// Prefix length (bytes) of the valid content; anything beyond is
        /// a torn tail to truncate.
        good_len: usize,
    },
}

/// Splits off and parses the header line. `Ok(None)` means the file is
/// empty or its first line is torn (no trailing newline) — the
/// crash-during-header-write case.
fn parse_header<'a>(
    bytes: &'a [u8],
    display: &str,
) -> Result<Option<(StoreHeader, &'a [u8])>, ExpError> {
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return Ok(None);
    };
    let line = std::str::from_utf8(&bytes[..nl]).map_err(|_| ExpError::Store {
        path: display.to_string(),
        detail: "header line is not UTF-8".into(),
    })?;
    let header: StoreHeader = serde_json::from_str(line).map_err(|e| ExpError::Store {
        path: display.to_string(),
        detail: format!("header line does not parse: {e}"),
    })?;
    Ok(Some((header, &bytes[nl + 1..])))
}

/// Checks a parsed header against the expected campaign.
fn check_header(header: &StoreHeader, spec: &CampaignSpec, display: &str) -> Result<(), ExpError> {
    if header.schema_version != SCHEMA_VERSION {
        return Err(ExpError::Mismatch {
            path: display.to_string(),
            detail: format!(
                "schema version {} (this build reads {SCHEMA_VERSION})",
                header.schema_version
            ),
        });
    }
    let expected = spec.fingerprint();
    if header.fingerprint != expected {
        return Err(ExpError::Mismatch {
            path: display.to_string(),
            detail: format!(
                "fingerprint {} but the requested campaign is {expected}",
                header.fingerprint
            ),
        });
    }
    if header.fingerprint != header.spec.fingerprint() {
        return Err(ExpError::Store {
            path: display.to_string(),
            detail: "header fingerprint does not match its embedded spec".into(),
        });
    }
    Ok(())
}

/// Parses the record lines after the header. Returns the records and the
/// byte length of the valid region *relative to the record bytes*. A
/// torn or unparseable LAST line is dropped (crash case); an unparseable
/// interior line is corruption, reported with its 1-based line number
/// and absolute byte offset (`base_offset` is where the record bytes
/// start within the file — i.e. the header line's length).
fn parse_records(
    bytes: &[u8],
    spec: &CampaignSpec,
    display: &str,
    base_offset: usize,
) -> Result<(Vec<UnitRecord>, usize), ExpError> {
    let mut records = Vec::new();
    let mut seen = BTreeSet::new();
    let mut good_len = 0usize;
    let mut offset = 0usize;
    let lines: Vec<&[u8]> = bytes.split_inclusive(|&b| b == b'\n').collect();
    for (i, raw) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let complete = raw.last() == Some(&b'\n');
        let parsed = std::str::from_utf8(raw)
            .ok()
            .filter(|_| complete)
            .and_then(|s| serde_json::from_str::<UnitRecord>(s.trim_end_matches('\n')).ok());
        match parsed {
            Some(record) => {
                validate_record(&record, spec, display)?;
                if !seen.insert(record.unit) {
                    return Err(ExpError::Store {
                        path: display.to_string(),
                        detail: format!("duplicate record for unit {}", record.unit),
                    });
                }
                offset += raw.len();
                good_len = offset;
                records.push(record);
            }
            None if last => break, // torn or garbled tail: truncate.
            None => {
                // `offset` has only advanced past parsed lines, so it is
                // the corrupt line's start relative to the record bytes.
                return Err(ExpError::Store {
                    path: display.to_string(),
                    detail: format!(
                        "record line {} (byte offset {}) does not parse",
                        i + 2,
                        base_offset + offset
                    ),
                });
            }
        }
    }
    Ok((records, good_len))
}

/// Full parse of a store file for `create_or_resume`.
fn parse_store_bytes(bytes: &[u8], spec: &CampaignSpec, display: &str) -> Result<Parsed, ExpError> {
    let Some((header, rest)) = parse_header(bytes, display)? else {
        return Ok(Parsed::Fresh);
    };
    check_header(&header, spec, display)?;
    let header_len = bytes.len() - rest.len();
    let (records, rec_len) = parse_records(rest, spec, display, header_len)?;
    Ok(Parsed::Replayed {
        records,
        good_len: header_len + rec_len,
    })
}

/// Checks a record against the campaign's unit and seed contract.
fn validate_record(
    record: &UnitRecord,
    spec: &CampaignSpec,
    display: &str,
) -> Result<(), ExpError> {
    let bad = |detail: String| ExpError::Store {
        path: display.to_string(),
        detail,
    };
    if spec.replicas == 0 || record.unit >= spec.total_units() {
        return Err(bad(format!(
            "unit {} out of range (campaign has {} units)",
            record.unit,
            spec.total_units()
        )));
    }
    if record.unit != record.point * spec.replicas + record.replica
        || record.replica >= spec.replicas
    {
        return Err(bad(format!(
            "unit {} does not match point {} / replica {}",
            record.unit, record.point, record.replica
        )));
    }
    let expected = unit_seed(spec.seed, record.point, record.replica);
    if record.seed != expected {
        return Err(bad(format!(
            "unit {} carries seed {} but the campaign derives {expected}",
            record.unit, record.seed
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Param, PointSpec};

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "store-test".into(),
            seed: 9,
            params: vec![],
            points: vec![
                PointSpec::new("a", vec![Param::new("u", 0.5)]),
                PointSpec::new("b", vec![Param::new("u", 0.8)]),
            ],
            replicas: 2,
        }
    }

    fn record(s: &CampaignSpec, unit: usize, value: f64) -> UnitRecord {
        let u = s.unit(unit);
        UnitRecord {
            unit: u.index,
            point: u.point,
            replica: u.replica,
            seed: u.seed,
            metrics: vec![Metric::new("objective", value)],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mc-exp-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn fresh_store_writes_header_and_records() {
        let s = spec();
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let (mut store, info) = Store::create_or_resume(&path, &s).unwrap();
        assert!(!info.resumed);
        store.append(record(&s, 0, 0.25)).unwrap();
        store.append(record(&s, 3, 0.5)).unwrap();
        drop(store);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header: StoreHeader = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(header.schema_version, SCHEMA_VERSION);
        assert_eq!(header.fingerprint, s.fingerprint());
        assert_eq!(header.spec, s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_replays_and_skips_completed_units() {
        let s = spec();
        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = Store::create_or_resume(&path, &s).unwrap();
            store.append(record(&s, 1, 0.75)).unwrap();
        }
        let (store, info) = Store::create_or_resume(&path, &s).unwrap();
        assert!(info.resumed);
        assert_eq!(info.replayed, 1);
        assert_eq!(info.truncated_bytes, 0);
        assert!(store.is_complete(1));
        assert!(!store.is_complete(0));
        assert_eq!(store.records()[0].metrics[0].value, 0.75);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let s = spec();
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = Store::create_or_resume(&path, &s).unwrap();
            store.append(record(&s, 0, 0.1)).unwrap();
        }
        let clean = std::fs::read(&path).unwrap();
        // Simulate a crash mid-write of the next record.
        let mut torn = clean.clone();
        torn.extend_from_slice(br#"{"unit":1,"point":0,"rep"#);
        std::fs::write(&path, &torn).unwrap();

        let (mut store, info) = Store::create_or_resume(&path, &s).unwrap();
        assert_eq!(info.replayed, 1);
        assert_eq!(info.truncated_bytes, (torn.len() - clean.len()) as u64);
        store.append(record(&s, 1, 0.2)).unwrap();
        drop(store);
        // The rewritten record parses and the file is clean again.
        let (store, info) = Store::create_or_resume(&path, &s).unwrap();
        assert_eq!(info.replayed, 2);
        assert_eq!(info.truncated_bytes, 0);
        assert!(store.is_complete(0) && store.is_complete(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbled_last_line_with_newline_is_also_recovered() {
        let s = spec();
        let path = tmp("garbled");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = Store::create_or_resume(&path, &s).unwrap();
            store.append(record(&s, 0, 0.1)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"not json at all\n");
        std::fs::write(&path, &bytes).unwrap();
        let (store, info) = Store::create_or_resume(&path, &s).unwrap();
        assert_eq!(info.replayed, 1);
        assert_eq!(info.truncated_bytes, 16);
        assert_eq!(store.completed_count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_truncation() {
        let s = spec();
        let path = tmp("interior");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = Store::create_or_resume(&path, &s).unwrap();
            store.append(record(&s, 0, 0.1)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let broken = text.replacen("\"unit\":0", "\"unit\":oops", 1);
        let broken = broken + &serde_json::to_string(&record(&s, 1, 0.2)).unwrap() + "\n";
        std::fs::write(&path, broken).unwrap();
        let err = Store::create_or_resume(&path, &s).unwrap_err();
        assert!(matches!(err, ExpError::Store { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_reports_line_and_byte_offset() {
        let s = spec();
        // Three records on lines 2–4; corrupting line 2 or 3 is interior
        // (line 4 would be a recoverable tail). Check the error pinpoints
        // each position by 1-based line number and absolute byte offset.
        for corrupt_idx in 0..2usize {
            let path = tmp(&format!("interior-pos{corrupt_idx}"));
            let _ = std::fs::remove_file(&path);
            {
                let (mut store, _) = Store::create_or_resume(&path, &s).unwrap();
                store.append(record(&s, 0, 0.1)).unwrap();
                store.append(record(&s, 1, 0.2)).unwrap();
                store.append(record(&s, 2, 0.3)).unwrap();
            }
            let text = std::fs::read_to_string(&path).unwrap();
            let mut lines: Vec<&str> = text.lines().collect();
            let line_no = corrupt_idx + 2; // header is line 1
            let byte_offset: usize = lines[..corrupt_idx + 1].iter().map(|l| l.len() + 1).sum();
            lines[corrupt_idx + 1] = "###garbage###";
            std::fs::write(&path, lines.join("\n") + "\n").unwrap();
            let err = Store::create_or_resume(&path, &s).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("record line {line_no} ")),
                "position {corrupt_idx}: {msg}"
            );
            assert!(
                msg.contains(&format!("(byte offset {byte_offset})")),
                "position {corrupt_idx}: {msg}"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn wrong_campaign_is_a_mismatch() {
        let s = spec();
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        let _ = Store::create_or_resume(&path, &s).unwrap();
        let mut other = spec();
        other.seed = 10;
        let err = Store::create_or_resume(&path, &other).unwrap_err();
        assert!(matches!(err, ExpError::Mismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_validation_enforces_the_seed_contract() {
        let s = spec();
        let mut store = Store::in_memory(&s);
        let mut r = record(&s, 0, 0.1);
        r.seed ^= 1;
        assert!(matches!(
            store.append(r).unwrap_err(),
            ExpError::Store { .. }
        ));
        let mut r = record(&s, 0, 0.1);
        r.unit = 99;
        assert!(store.append(r).is_err());
        store.append(record(&s, 0, 0.1)).unwrap();
        assert!(store.append(record(&s, 0, 0.1)).is_err());
    }

    #[test]
    fn canonical_lines_sort_by_unit_and_round_trip_bytes() {
        let s = spec();
        let mut a = Store::in_memory(&s);
        a.append(record(&s, 2, 0.3)).unwrap();
        a.append(record(&s, 0, 0.1)).unwrap();
        let mut b = Store::in_memory(&s);
        b.append(record(&s, 0, 0.1)).unwrap();
        b.append(record(&s, 2, 0.3)).unwrap();
        assert_eq!(a.canonical_lines(), b.canonical_lines());
        let first_record = a.canonical_lines().lines().nth(1).unwrap().to_string();
        let parsed: UnitRecord = serde_json::from_str(&first_record).unwrap();
        assert_eq!(parsed.unit, 0);
    }

    #[test]
    fn merge_dedups_identical_and_rejects_conflicts() {
        let s = spec();
        let mut a = Store::in_memory(&s);
        a.append(record(&s, 0, 0.1)).unwrap();
        a.append(record(&s, 1, 0.2)).unwrap();
        let mut b = Store::in_memory(&s);
        b.append(record(&s, 1, 0.2)).unwrap();
        b.append(record(&s, 2, 0.3)).unwrap();
        let merged = Store::merge(&[a, b]).unwrap();
        assert_eq!(merged.completed_count(), 3);

        let mut c = Store::in_memory(&s);
        c.append(record(&s, 0, 0.1)).unwrap();
        let mut d = Store::in_memory(&s);
        d.append(record(&s, 0, 0.9)).unwrap();
        assert!(matches!(
            Store::merge(&[c, d]).unwrap_err(),
            ExpError::Store { .. }
        ));
    }

    #[test]
    fn append_dedup_skips_identical_and_rejects_conflicts() {
        let s = spec();
        let mut store = Store::in_memory(&s);
        assert!(store.append_dedup(record(&s, 0, 0.1)).unwrap());
        // At-least-once redelivery of the same unit is a no-op...
        assert!(!store.append_dedup(record(&s, 0, 0.1)).unwrap());
        assert_eq!(store.records().len(), 1);
        // ...but a different payload for the same unit is corruption.
        let err = store.append_dedup(record(&s, 0, 0.9)).unwrap_err();
        assert!(err.to_string().contains("conflicting records"), "{err}");
        // Contract validation still runs before the dedup decision.
        let mut bad = record(&s, 1, 0.2);
        bad.seed ^= 1;
        assert!(store.append_dedup(bad).is_err());
    }

    #[test]
    fn load_reads_without_modifying_a_torn_file() {
        let s = spec();
        let path = tmp("load");
        let _ = std::fs::remove_file(&path);
        {
            let (mut store, _) = Store::create_or_resume(&path, &s).unwrap();
            store.append(record(&s, 0, 0.1)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{torn");
        std::fs::write(&path, &bytes).unwrap();
        let store = Store::load(&path, Some(&s)).unwrap();
        assert_eq!(store.completed_count(), 1);
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "load must not write");
        std::fs::remove_file(&path).unwrap();
    }
}
