//! Shared completion accounting over a campaign's unit space.
//!
//! Three consumers need the same arithmetic — the runner's progress
//! reporter, `chebymc exp status`, and the mc-serve coordinator's lease
//! table — so it lives here once: which axis points are fully replicated,
//! and how far each `i/n` shard stripe has progressed. Every function is
//! pure over a completion predicate, so callers can account against a
//! [`Store`](crate::store::Store), a lease table's in-memory set, or
//! anything else that knows which units are done.

use crate::run::Shard;
use crate::spec::CampaignSpec;

/// Completion of one `i/n` shard stripe of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProgress {
    /// The stripe.
    pub shard: Shard,
    /// Units the stripe owns.
    pub units: usize,
    /// Owned units that are complete.
    pub done: usize,
}

impl ShardProgress {
    /// Whether every owned unit is complete. Empty stripes (more shards
    /// than units) are trivially complete.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done == self.units
    }
}

/// Number of axis points whose every replica is complete.
#[must_use]
pub fn points_complete(spec: &CampaignSpec, is_complete: impl Fn(usize) -> bool) -> usize {
    (0..spec.points.len())
        .filter(|&p| (0..spec.replicas).all(|r| is_complete(p * spec.replicas + r)))
        .count()
}

/// Per-stripe completion counts for an `i/n` split of `total_units`.
///
/// # Panics
///
/// Panics when `count == 0` — a zero-way split has no stripes to report.
#[must_use]
pub fn shard_progress(
    total_units: usize,
    count: usize,
    is_complete: impl Fn(usize) -> bool,
) -> Vec<ShardProgress> {
    assert!(count > 0, "shard count must be at least 1");
    let mut out: Vec<ShardProgress> = (0..count)
        .map(|index| ShardProgress {
            shard: Shard { index, count },
            units: 0,
            done: 0,
        })
        .collect();
    for unit in 0..total_units {
        let p = &mut out[unit % count];
        p.units += 1;
        if is_complete(unit) {
            p.done += 1;
        }
    }
    out
}

/// Completion of one specific stripe (the lease table's per-lease check).
#[must_use]
pub fn one_shard_progress(
    total_units: usize,
    shard: Shard,
    is_complete: impl Fn(usize) -> bool,
) -> ShardProgress {
    let mut progress = ShardProgress {
        shard,
        units: 0,
        done: 0,
    };
    for unit in (0..total_units).filter(|&u| shard.owns(u)) {
        progress.units += 1;
        if is_complete(unit) {
            progress.done += 1;
        }
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Param, PointSpec};

    fn spec(points: usize, replicas: usize) -> CampaignSpec {
        CampaignSpec {
            name: "acct".into(),
            seed: 3,
            params: vec![],
            points: (0..points)
                .map(|i| PointSpec::new(format!("p{i}"), vec![Param::new("i", i as f64)]))
                .collect(),
            replicas,
        }
    }

    #[test]
    fn points_complete_requires_every_replica() {
        let s = spec(3, 2);
        // Units 0,1 complete -> point 0 done; unit 2 only -> point 1 not.
        let done = [0usize, 1, 2];
        assert_eq!(points_complete(&s, |u| done.contains(&u)), 1);
        assert_eq!(points_complete(&s, |_| true), 3);
        assert_eq!(points_complete(&s, |_| false), 0);
    }

    #[test]
    fn shard_progress_partitions_the_units_exactly() {
        let progress = shard_progress(10, 3, |u| u < 4);
        let total: usize = progress.iter().map(|p| p.units).sum();
        let done: usize = progress.iter().map(|p| p.done).sum();
        assert_eq!(total, 10);
        assert_eq!(done, 4);
        // Stripe 0 owns 0,3,6,9; units 0 and 3 are done.
        assert_eq!(progress[0].units, 4);
        assert_eq!(progress[0].done, 2);
        assert_eq!(progress[1].shard.to_string(), "1/3");
    }

    #[test]
    fn empty_stripes_are_trivially_complete() {
        let progress = shard_progress(2, 4, |_| false);
        assert!(progress[2].is_complete() && progress[3].is_complete());
        assert!(!progress[0].is_complete());
    }

    #[test]
    fn one_shard_matches_the_full_split() {
        let all = shard_progress(17, 4, |u| u % 2 == 0);
        for (i, expect) in all.iter().enumerate() {
            let got = one_shard_progress(17, Shard { index: i, count: 4 }, |u| u % 2 == 0);
            assert_eq!(got, *expect);
        }
    }
}
