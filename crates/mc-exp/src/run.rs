//! The campaign runner: shard filtering, pending-unit resume, parallel
//! dispatch, and in-order persistence.
//!
//! Determinism contract: a unit's result depends only on its derived seed
//! (see [`crate::spec::unit_seed`]), never on which thread or process ran
//! it. The runner additionally flushes records to the store *in session
//! order* — out-of-order completions park in a buffer until their
//! predecessors are written — so an uninterrupted single-shard store is
//! byte-identical across thread counts, and any interrupted, resumed, or
//! sharded history converges to the same [`Store::canonical_lines`].

use crate::progress::Progress;
use crate::spec::{CampaignSpec, WorkUnit};
use crate::store::{Metric, Store, UnitRecord};
use crate::ExpError;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One shard of a campaign: this process runs the units whose index is
/// congruent to `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 0-based shard index.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Default for Shard {
    /// The whole campaign in one process.
    fn default() -> Self {
        Shard { index: 0, count: 1 }
    }
}

impl Shard {
    /// Parses the CLI syntax `i/n` (e.g. `0/4`). Validity beyond syntax
    /// (index below count) is the `E003` lint's job, so a bad-but-parsed
    /// shard still reaches the named diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Config`] for anything that is not two
    /// integers joined by `/`.
    pub fn parse(s: &str) -> Result<Self, ExpError> {
        let err = || {
            ExpError::Config(format!(
                "invalid shard `{s}`: expected INDEX/COUNT, e.g. 0/4"
            ))
        };
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        Ok(Shard {
            index: i.trim().parse().map_err(|_| err())?,
            count: n.trim().parse().map_err(|_| err())?,
        })
    }

    /// Whether this shard owns unit `index`.
    #[must_use]
    pub fn owns(&self, index: usize) -> bool {
        self.count > 0 && index % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Run-time knobs of one campaign session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// Total thread budget (`0` = all available cores), split between the
    /// unit fan-out and each unit's inner parallelism.
    pub threads: usize,
    /// This process's shard.
    pub shard: Shard,
    /// Whether to emit progress/ETA lines on stderr.
    pub progress: bool,
}

/// Computes one work unit. Implementations must be deterministic in
/// `unit.seed` — the runner may execute units on any thread in any
/// order, and a resumed or sharded campaign must reproduce the same
/// record bit-for-bit.
pub trait UnitRunner: Sync {
    /// Runs the unit within `inner_threads` threads of inner parallelism
    /// and returns its metrics.
    ///
    /// # Errors
    ///
    /// Any failure aborts the session (completed units stay persisted).
    fn run_unit(&self, unit: &WorkUnit, inner_threads: usize) -> Result<Vec<Metric>, ExpError>;
}

impl<F> UnitRunner for F
where
    F: Fn(&WorkUnit, usize) -> Result<Vec<Metric>, ExpError> + Sync,
{
    fn run_unit(&self, unit: &WorkUnit, inner_threads: usize) -> Result<Vec<Metric>, ExpError> {
        self(unit, inner_threads)
    }
}

/// What one [`run_campaign`] session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Total units of the whole campaign.
    pub total_units: usize,
    /// Units owned by this shard.
    pub shard_units: usize,
    /// Shard units skipped because the store already held them.
    pub skipped: usize,
    /// Units actually computed and persisted this session.
    pub ran: usize,
    /// Wall-clock time of the session.
    pub elapsed: Duration,
}

/// Shared completion sink: appends records to the store in session order
/// (buffering out-of-order completions) and drives the progress reporter.
struct Sink<'a> {
    store: &'a mut Store,
    next: usize,
    pending: BTreeMap<usize, UnitRecord>,
    progress: Progress,
    error: Option<ExpError>,
}

impl Sink<'_> {
    /// Accepts the `session_pos`-th unit's record, flushing every
    /// record that is now in order. Returns `false` once the session
    /// should stop (an append failed).
    fn complete(&mut self, session_pos: usize, record: UnitRecord, spec: &CampaignSpec) -> bool {
        self.pending.insert(session_pos, record);
        while let Some(record) = self.pending.remove(&self.next) {
            if let Err(e) = self.store.append(record) {
                self.error = Some(e);
                return false;
            }
            self.next += 1;
            let points_done =
                crate::accounting::points_complete(spec, |u| self.store.is_complete(u));
            self.progress
                .unit_done(self.store.completed_count(), points_done);
        }
        true
    }

    fn fail(&mut self, e: ExpError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

/// Runs (this shard of) a campaign: lints the spec, skips units the store
/// already holds, computes the rest on a worker pool, and persists each
/// record with an fsync before counting it done.
///
/// # Errors
///
/// Lint errors ([`ExpError::Lint`]) before any work starts; otherwise the
/// first unit or store failure, after which completed units remain
/// persisted for a later resume.
pub fn run_campaign(
    spec: &CampaignSpec,
    runner: &dyn UnitRunner,
    store: &mut Store,
    cfg: &RunConfig,
) -> Result<RunSummary, ExpError> {
    let _session_span = mc_obs::span("exp.session");
    let start = Instant::now();
    let store_path = store.path().map(|p| p.display().to_string());
    let report = mc_lint::lint_campaign(&spec.check(
        cfg.shard.index,
        cfg.shard.count,
        store_path.as_deref(),
        None,
    ));
    if report.has_errors() {
        return Err(ExpError::Lint(report));
    }
    if store.spec() != spec {
        return Err(ExpError::Mismatch {
            path: store_path.unwrap_or_else(|| "<memory>".into()),
            detail: "the store was opened for a different spec".into(),
        });
    }

    let total_units = spec.total_units();
    let shard_units = (0..total_units).filter(|&i| cfg.shard.owns(i)).count();
    let session: Vec<WorkUnit> = (0..total_units)
        .filter(|&i| cfg.shard.owns(i) && !store.is_complete(i))
        .map(|i| spec.unit(i))
        .collect();
    let skipped = shard_units - session.len();

    let (outer, inner) = mc_par::ThreadBudget::explicit(cfg.threads).split(session.len());
    let inner_threads = inner.get();
    let pool = mc_par::WorkerPool::new(outer);

    let progress = Progress::new(cfg.progress, total_units, spec.points.len(), session.len());
    let sink = Mutex::new(Sink {
        store,
        next: 0,
        pending: BTreeMap::new(),
        progress,
        error: None,
    });

    pool.for_each_while(session.len(), |pos| {
        let unit = session[pos];
        let _unit_span = mc_obs::span("exp.unit");
        match runner.run_unit(&unit, inner_threads) {
            Ok(metrics) => {
                let record = UnitRecord {
                    unit: unit.index,
                    point: unit.point,
                    replica: unit.replica,
                    seed: unit.seed,
                    metrics,
                };
                sink.lock()
                    .expect("sink poisoned")
                    .complete(pos, record, spec)
            }
            Err(e) => {
                sink.lock().expect("sink poisoned").fail(e);
                false
            }
        }
    });

    let sink = sink.into_inner().expect("sink poisoned");
    let ran = sink.next;
    if let Some(e) = sink.error {
        return Err(e);
    }
    let completed = sink.store.completed_count();
    sink.progress.finish(completed);
    Ok(RunSummary {
        total_units,
        shard_units,
        skipped,
        ran,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Param, PointSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spec(points: usize, replicas: usize) -> CampaignSpec {
        CampaignSpec {
            name: "run-test".into(),
            seed: 11,
            params: vec![],
            points: (0..points)
                .map(|i| PointSpec::new(format!("p{i}"), vec![Param::new("i", i as f64)]))
                .collect(),
            replicas,
        }
    }

    /// A runner whose metric is a pure function of the seed.
    fn seed_runner(unit: &WorkUnit, _inner: usize) -> Result<Vec<Metric>, ExpError> {
        Ok(vec![Metric::new("value", (unit.seed % 1000) as f64)])
    }

    #[test]
    fn runs_every_unit_once_and_in_order() {
        let s = spec(3, 4);
        let mut store = Store::in_memory(&s);
        let cfg = RunConfig {
            threads: 4,
            ..RunConfig::default()
        };
        let summary = run_campaign(&s, &seed_runner, &mut store, &cfg).unwrap();
        assert_eq!(summary.total_units, 12);
        assert_eq!(summary.ran, 12);
        assert_eq!(summary.skipped, 0);
        let units: Vec<usize> = store.records().iter().map(|r| r.unit).collect();
        assert_eq!(units, (0..12).collect::<Vec<_>>(), "in-order flush");
    }

    #[test]
    fn store_contents_are_identical_across_thread_counts() {
        let s = spec(2, 8);
        let mut serial = Store::in_memory(&s);
        run_campaign(
            &s,
            &seed_runner,
            &mut serial,
            &RunConfig {
                threads: 1,
                ..RunConfig::default()
            },
        )
        .unwrap();
        let mut parallel = Store::in_memory(&s);
        run_campaign(
            &s,
            &seed_runner,
            &mut parallel,
            &RunConfig {
                threads: 8,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.canonical_lines(), parallel.canonical_lines());
        assert_eq!(
            serial.records(),
            parallel.records(),
            "raw order matches too (in-order flush)"
        );
    }

    #[test]
    fn resume_skips_completed_units() {
        let s = spec(2, 3);
        let mut store = Store::in_memory(&s);
        // Pre-complete two units by hand.
        for i in [1usize, 4] {
            let u = s.unit(i);
            store
                .append(UnitRecord {
                    unit: u.index,
                    point: u.point,
                    replica: u.replica,
                    seed: u.seed,
                    metrics: seed_runner(&u, 1).unwrap(),
                })
                .unwrap();
        }
        let calls = AtomicUsize::new(0);
        let counting = |unit: &WorkUnit, inner: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            seed_runner(unit, inner)
        };
        let summary = run_campaign(&s, &counting, &mut store, &RunConfig::default()).unwrap();
        assert_eq!(summary.skipped, 2);
        assert_eq!(summary.ran, 4);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(store.completed_count(), 6);
    }

    #[test]
    fn shards_partition_the_units_exactly() {
        let s = spec(3, 3);
        let mut a = Store::in_memory(&s);
        let mut b = Store::in_memory(&s);
        let base = RunConfig::default();
        run_campaign(
            &s,
            &seed_runner,
            &mut a,
            &RunConfig {
                shard: Shard { index: 0, count: 2 },
                ..base
            },
        )
        .unwrap();
        run_campaign(
            &s,
            &seed_runner,
            &mut b,
            &RunConfig {
                shard: Shard { index: 1, count: 2 },
                ..base
            },
        )
        .unwrap();
        assert_eq!(a.completed_count() + b.completed_count(), 9);
        let merged = Store::merge(&[a, b]).unwrap();

        let mut single = Store::in_memory(&s);
        run_campaign(&s, &seed_runner, &mut single, &base).unwrap();
        assert_eq!(merged.canonical_lines(), single.canonical_lines());
    }

    #[test]
    fn lint_errors_stop_the_run_before_any_work() {
        let s = spec(0, 5);
        let mut store = Store::in_memory(&s);
        let err = run_campaign(&s, &seed_runner, &mut store, &RunConfig::default()).unwrap_err();
        match err {
            ExpError::Lint(report) => assert_eq!(report.codes(), vec![mc_lint::Code::E001]),
            other => panic!("expected lint error, got {other}"),
        }
        let s = spec(2, 2);
        let cfg = RunConfig {
            shard: Shard { index: 5, count: 2 },
            ..RunConfig::default()
        };
        let mut store = Store::in_memory(&s);
        let err = run_campaign(&s, &seed_runner, &mut store, &cfg).unwrap_err();
        assert!(matches!(err, ExpError::Lint(_)));
    }

    #[test]
    fn a_failing_unit_aborts_but_keeps_prior_records() {
        let s = spec(1, 6);
        let failing = |unit: &WorkUnit, inner: usize| {
            if unit.replica == 3 {
                Err(ExpError::Config("boom".into()))
            } else {
                seed_runner(unit, inner)
            }
        };
        let mut store = Store::in_memory(&s);
        let cfg = RunConfig {
            threads: 1,
            ..RunConfig::default()
        };
        let err = run_campaign(&s, &failing, &mut store, &cfg).unwrap_err();
        assert!(err.to_string().contains("boom"));
        assert_eq!(
            store.completed_count(),
            3,
            "units before the failure persist"
        );
        // A resume with a fixed runner finishes the campaign.
        let summary = run_campaign(&s, &seed_runner, &mut store, &cfg).unwrap();
        assert_eq!(summary.skipped, 3);
        assert_eq!(summary.ran, 3);
    }

    #[test]
    fn shard_parsing() {
        assert_eq!(Shard::parse("0/4").unwrap(), Shard { index: 0, count: 4 });
        assert_eq!(Shard::parse("3/8").unwrap(), Shard { index: 3, count: 8 });
        assert!(Shard::parse("3").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert!(Shard::parse("1/2/3").is_err());
        assert_eq!(Shard::parse("5/2").unwrap().to_string(), "5/2");
    }
}
