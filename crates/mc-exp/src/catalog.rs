//! The built-in campaign catalog: the paper's experiments as declarative
//! campaign definitions, shared by the migrated bench binaries and
//! `chebymc exp`.
//!
//! Each entry pairs a [`CampaignSpec`] (the axis and replication) with a
//! [`UnitRunner`] (how one unit is computed). Numeric parity with the
//! legacy binaries is part of the contract:
//!
//! * `fig5` derives its *evaluation* seeds as
//!   `derive_set_seed(campaign_seed, u_index, replica)` — the seeds the
//!   in-process [`evaluate_policy_over_utilization`] batch would use —
//!   so per-point means reproduce the legacy Fig. 5 numbers bit-for-bit.
//!   (The framework's per-unit identity seed still follows the
//!   `hash(seed, point, replica)` contract; the runner just re-derives
//!   the legacy stream internally, because a campaign point is
//!   *policy × utilisation* while the batch pipeline's point is
//!   utilisation alone.)
//! * `table2` and `ablation_sigma` reuse the exact trace seeds of their
//!   binaries (`200 + benchmark_index`, reference seed 999, probe seed 4).
//!
//! [`evaluate_policy_over_utilization`]: chebymc_core::pipeline::evaluate_policy_over_utilization

use crate::run::UnitRunner;
use crate::spec::{CampaignSpec, Param, PointSpec, WorkUnit};
use crate::store::Metric;
use crate::ExpError;
use chebymc_core::pipeline::{
    derive_set_seed, evaluate_arena_automotive_one_set, evaluate_arena_one_set,
    evaluate_policy_one_set,
};
use chebymc_core::policy::{paper_lambda_baselines, WcetPolicy};
use mc_exec::benchmarks;
use mc_exec::trace::ExecutionTrace;
use mc_opt::{GaConfig, ProblemConfig};
use mc_sched::policy::{PolicySpec, SchedulingPolicy};
use mc_sched::sim::SimConfig;
use mc_stats::chebyshev::one_sided_bound;
use mc_stats::summary::Summary;
use mc_task::automotive::AutomotiveConfig;
use mc_task::generate::GeneratorConfig;
use mc_task::time::Duration;
use std::sync::OnceLock;

/// A built campaign: its spec plus the runner that computes one unit.
pub struct Campaign {
    /// The campaign's declarative spec.
    pub spec: CampaignSpec,
    /// The unit runner.
    pub runner: Box<dyn UnitRunner + Send + Sync>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("spec", &self.spec)
            .finish()
    }
}

/// Knobs the CLI and the bench binaries thread into the catalog. `None`
/// keeps each campaign's paper-scale default.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogOptions {
    /// Task-set replicas per point (`fig5`).
    pub sets: Option<usize>,
    /// Sampled instances per benchmark (`table2`).
    pub samples: Option<usize>,
    /// Utilisation axis override (`fig5`).
    pub points: Option<Vec<f64>>,
    /// Campaign base seed.
    pub seed: Option<u64>,
    /// Runnables per generated task set (`automotive`).
    pub runnables: Option<usize>,
}

/// The catalog's campaign names.
#[must_use]
pub fn names() -> &'static [&'static str] {
    &[
        "fig5",
        "table2",
        "ablation_sigma",
        "policy_arena",
        "automotive",
    ]
}

/// Builds a named campaign.
///
/// # Errors
///
/// [`ExpError::Config`] for unknown names or benchmark-construction
/// failures.
pub fn build(name: &str, opts: &CatalogOptions) -> Result<Campaign, ExpError> {
    match name {
        "fig5" => Ok(fig5(opts)),
        "table2" => table2(opts),
        "ablation_sigma" => Ok(ablation_sigma(opts)),
        "policy_arena" => policy_arena(opts),
        "automotive" => automotive(opts),
        other => Err(ExpError::Config(format!(
            "unknown campaign `{other}` (known: {})",
            names().join(", ")
        ))),
    }
}

/// Rebuilds the runner for a spec received from elsewhere (a store header,
/// a coordinator lease): recovers the [`CatalogOptions`] the spec encodes,
/// rebuilds the named campaign, and verifies the result is fingerprint-
/// identical to what was received — so a worker computing against a
/// rebuilt runner provably runs the *same* campaign the submitter
/// declared, not a near-miss with different axis values.
///
/// # Errors
///
/// [`ExpError::Config`] for unknown names, and [`ExpError::Mismatch`] when
/// the rebuilt spec disagrees with the received one (a spec produced by a
/// different catalog version, or hand-edited points this catalog cannot
/// reproduce).
pub fn rebuild(spec: &CampaignSpec) -> Result<Campaign, ExpError> {
    let mut opts = CatalogOptions {
        seed: Some(spec.seed),
        ..CatalogOptions::default()
    };
    match spec.name.as_str() {
        "fig5" | "policy_arena" | "automotive" => {
            opts.sets = Some(spec.replicas);
            // Points are policy-major; the utilisation axis repeats per
            // policy, so the policy-0 block recovers it exactly.
            let u_values: Vec<f64> = spec
                .points
                .iter()
                .filter(|p| p.param("policy") == Some(0.0))
                .filter_map(|p| p.param("u"))
                .collect();
            if !u_values.is_empty() {
                opts.points = Some(u_values);
            }
            if let Some(r) = spec.params.iter().find(|p| p.name == "runnables") {
                opts.runnables = Some(r.value.round() as usize);
            }
        }
        "table2" => {
            if let Some(samples) = spec.params.iter().find(|p| p.name == "samples") {
                opts.samples = Some(samples.value as usize);
            }
        }
        _ => {}
    }
    let campaign = build(&spec.name, &opts)?;
    if campaign.spec != *spec {
        return Err(ExpError::Mismatch {
            path: format!("campaign:{}", spec.name),
            detail: format!(
                "spec fingerprint {} cannot be rebuilt from this catalog \
                 (rebuilt {})",
                spec.fingerprint(),
                campaign.spec.fingerprint()
            ),
        });
    }
    Ok(campaign)
}

/// The Fig. 5 policy roster: the GA scheme, the paper's λ baselines, ACET.
#[must_use]
pub fn fig5_policies() -> Vec<WcetPolicy> {
    let mut policies = vec![WcetPolicy::ChebyshevGa {
        ga: GaConfig {
            population_size: 48,
            generations: 40,
            ..GaConfig::default()
        },
        problem: ProblemConfig::default(),
    }];
    policies.extend(paper_lambda_baselines());
    policies.push(WcetPolicy::Acet);
    policies
}

/// Fig. 5: the Eq. 13 objective of every policy as `U_HC^HI` varies.
/// Points are policy-major (`point = policy_index * |u| + u_index`).
fn fig5(opts: &CatalogOptions) -> Campaign {
    let seed = opts.seed.unwrap_or(5);
    let replicas = opts.sets.unwrap_or(200);
    let u_values: Vec<f64> = opts
        .points
        .clone()
        .unwrap_or_else(|| (4..=9).map(|i| f64::from(i) / 10.0).collect());
    let policies = fig5_policies();
    let mut points = Vec::new();
    for (pi, policy) in policies.iter().enumerate() {
        for (ui, &u) in u_values.iter().enumerate() {
            points.push(PointSpec::new(
                format!("{}/u{u:.2}", policy.name()),
                vec![
                    Param::new("policy", pi as f64),
                    Param::new("u", u),
                    Param::new("u_index", ui as f64),
                ],
            ));
        }
    }
    let spec = CampaignSpec {
        name: "fig5".into(),
        seed,
        params: vec![],
        points,
        replicas,
    };
    let runner = Fig5Runner {
        policies,
        u_values,
        seed,
    };
    Campaign {
        spec,
        runner: Box::new(runner),
    }
}

struct Fig5Runner {
    policies: Vec<WcetPolicy>,
    u_values: Vec<f64>,
    seed: u64,
}

impl UnitRunner for Fig5Runner {
    fn run_unit(&self, unit: &WorkUnit, inner_threads: usize) -> Result<Vec<Metric>, ExpError> {
        let u_count = self.u_values.len();
        let policy = &self.policies[unit.point / u_count];
        let u_index = unit.point % u_count;
        let u = self.u_values[u_index];
        // The legacy batch stream: one seed per (utilisation, set), shared
        // across policies so every policy designs the same task sets.
        let eval_seed = derive_set_seed(self.seed, u_index, unit.replica);
        let e = evaluate_policy_one_set(
            u,
            policy,
            &GeneratorConfig::default(),
            eval_seed,
            inner_threads,
        )?;
        Ok(vec![
            Metric::new("p_ms", e.p_ms),
            Metric::new("max_u_lc_lo", e.max_u_lc_lo),
            Metric::new("objective", e.objective),
        ])
    }
}

/// Table II: the `1/(1+n²)` analysis bound vs the measured overrun rate
/// of each benchmark at `ACET + n·σ`. Points are benchmark-major
/// (`point = benchmark_index * 5 + n`), one replica each.
fn table2(opts: &CatalogOptions) -> Result<Campaign, ExpError> {
    let samples = opts.samples.unwrap_or(20_000);
    let suite = benchmarks::table2_suite().map_err(exec_err)?;
    let mut points = Vec::new();
    for (bi, bench) in suite.iter().enumerate() {
        for n in 0..=4u32 {
            points.push(PointSpec::new(
                format!("{}/n{n}", bench.name()),
                vec![
                    Param::new("benchmark", bi as f64),
                    Param::new("n", f64::from(n)),
                ],
            ));
        }
    }
    let spec = CampaignSpec {
        name: "table2".into(),
        seed: opts.seed.unwrap_or(0),
        // The sample count changes every measured cell, so it must enter
        // the fingerprint: a store sampled at one scale refuses to resume
        // at another.
        params: vec![Param::new("samples", samples as f64)],
        points,
        replicas: 1,
    };
    Ok(Campaign {
        spec,
        runner: Box::new(Table2Runner { samples }),
    })
}

struct Table2Runner {
    samples: usize,
}

impl UnitRunner for Table2Runner {
    fn run_unit(&self, unit: &WorkUnit, _inner_threads: usize) -> Result<Vec<Metric>, ExpError> {
        let suite = benchmarks::table2_suite().map_err(exec_err)?;
        let bi = unit.point / 5;
        let n = (unit.point % 5) as f64;
        let bench = suite.get(bi).ok_or_else(|| {
            ExpError::Config(format!("table2 point {} has no benchmark", unit.point))
        })?;
        // The legacy binary's trace seed: 200 + suite index.
        let trace = bench
            .sample_trace(self.samples, 200 + bi as u64)
            .map_err(exec_err)?;
        let s = trace.summary().map_err(exec_err)?;
        let level = s.mean() + n * s.std_dev();
        let measured = trace.overrun_rate(level).map_err(exec_err)?.rate();
        Ok(vec![
            Metric::new("analysis_bound", one_sided_bound(n)),
            Metric::new("overrun_rate", measured),
        ])
    }
}

/// Trace lengths of the σ-estimator ablation.
const ABLATION_M: [usize; 5] = [10, 30, 100, 1_000, 20_000];

/// The σ-estimator ablation: population vs sample σ and the sensitivity
/// of `C_LO` to the trace length `m` (benchmark `corner`, `n = 3`).
fn ablation_sigma(opts: &CatalogOptions) -> Campaign {
    let points = ABLATION_M
        .iter()
        .map(|&m| PointSpec::new(format!("m{m}"), vec![Param::new("m", m as f64)]))
        .collect();
    let spec = CampaignSpec {
        name: "ablation_sigma".into(),
        seed: opts.seed.unwrap_or(0),
        params: vec![],
        points,
        replicas: 1,
    };
    Campaign {
        spec,
        runner: Box::new(AblationRunner {
            reference: OnceLock::new(),
        }),
    }
}

struct AblationRunner {
    /// The long reference trace (seed 999) that measures the "true"
    /// overrun rate of a level, sampled once and shared across units.
    reference: OnceLock<Result<ExecutionTrace, String>>,
}

impl AblationRunner {
    fn reference(&self) -> Result<&ExecutionTrace, ExpError> {
        self.reference
            .get_or_init(|| {
                benchmarks::corner()
                    .and_then(|b| b.sample_trace(200_000, 999))
                    .map_err(|e| e.to_string())
            })
            .as_ref()
            .map_err(|e| ExpError::Config(format!("reference trace failed: {e}")))
    }
}

impl UnitRunner for AblationRunner {
    fn run_unit(&self, unit: &WorkUnit, _inner_threads: usize) -> Result<Vec<Metric>, ExpError> {
        let m = ABLATION_M.get(unit.point).copied().ok_or_else(|| {
            ExpError::Config(format!("ablation point {} has no trace length", unit.point))
        })?;
        let n = 3.0;
        let bench = benchmarks::corner().map_err(exec_err)?;
        let trace = bench.sample_trace(m, 4).map_err(exec_err)?;
        let s = Summary::from_samples(trace.samples())
            .map_err(|e| ExpError::Config(format!("trace summary failed: {e}")))?;
        let c_pop = s.mean() + n * s.std_dev();
        let c_sample = s.mean() + n * s.sample_std_dev();
        let measured = self
            .reference()?
            .overrun_rate(c_pop)
            .map_err(exec_err)?
            .rate();
        Ok(vec![
            Metric::new("acet", s.mean()),
            Metric::new("pop_sigma", s.std_dev()),
            Metric::new("sample_sigma", s.sample_std_dev()),
            Metric::new("c_lo_pop", c_pop),
            Metric::new("c_lo_sample", c_sample),
            Metric::new("delta_pct", (c_sample / c_pop - 1.0) * 100.0),
            Metric::new("measured_overrun", measured),
        ])
    }
}

/// The arena's fixed design-time WCET assignment: every policy judges sets
/// whose `C_LO` came from the same Chebyshev `n = 3` design, so the
/// comparison isolates the *scheduling* policy.
fn arena_wcet() -> WcetPolicy {
    WcetPolicy::ChebyshevUniform { n: 3.0 }
}

/// The arena's simulation window. Long enough for a few hundred jobs per
/// task at the default generator periods; short enough that a unit stays
/// in the low-millisecond range.
const ARENA_HORIZON_SECS: u64 = 5;

/// `policy_arena`: every [`PolicySpec`] in the roster races over shared
/// seeded task sets as the bound utilisation varies. Points are
/// policy-major (`point = policy_index * |u| + u_index`), mirroring
/// `fig5`; the *evaluation* seed depends only on `(u_index, replica)`, so
/// each policy admits and simulates bit-identical task sets and the
/// per-point comparison is paired.
fn policy_arena(opts: &CatalogOptions) -> Result<Campaign, ExpError> {
    let seed = opts.seed.unwrap_or(11);
    let replicas = opts.sets.unwrap_or(200);
    // The default axis spans the overload transition: below 1.0 every
    // entrant admits nearly everything; the interesting separation —
    // demand vs utilisation tests, containment vs plain Liu — happens as
    // the bound utilisation crosses 1.
    let u_values: Vec<f64> = opts
        .points
        .clone()
        .unwrap_or_else(|| vec![0.6, 0.8, 1.0, 1.1, 1.2, 1.3]);
    let roster = PolicySpec::arena_roster();
    // Gate the roster before any unit runs: a duplicate name would merge
    // two policies into one aggregate row; a bad fraction would fail every
    // unit of one policy block, thousands of units into the campaign.
    let lint = mc_lint::lint_policy_roster(&roster);
    if lint.has_errors() {
        return Err(ExpError::Config(format!(
            "policy roster failed lint:\n{lint}"
        )));
    }
    let mut points = Vec::new();
    for (pi, policy) in roster.iter().enumerate() {
        for (ui, &u) in u_values.iter().enumerate() {
            points.push(PointSpec::new(
                format!("{}/u{u:.2}", policy.name()),
                vec![
                    Param::new("policy", pi as f64),
                    Param::new("u", u),
                    Param::new("u_index", ui as f64),
                ],
            ));
        }
    }
    let spec = CampaignSpec {
        name: "policy_arena".into(),
        seed,
        params: vec![],
        points,
        replicas,
    };
    Ok(Campaign {
        spec,
        runner: Box::new(PolicyArenaRunner {
            roster,
            u_values,
            seed,
        }),
    })
}

struct PolicyArenaRunner {
    roster: Vec<PolicySpec>,
    u_values: Vec<f64>,
    seed: u64,
}

impl UnitRunner for PolicyArenaRunner {
    fn run_unit(&self, unit: &WorkUnit, _inner_threads: usize) -> Result<Vec<Metric>, ExpError> {
        let u_count = self.u_values.len();
        let policy = &self.roster[unit.point / u_count];
        let u_index = unit.point % u_count;
        let u = self.u_values[u_index];
        // Policy-independent seed: every policy sees the same task sets.
        let eval_seed = derive_set_seed(self.seed, u_index, unit.replica);
        let base = SimConfig::new(Duration::from_secs(ARENA_HORIZON_SECS));
        let e = evaluate_arena_one_set(
            u,
            &arena_wcet(),
            policy,
            &GeneratorConfig::default(),
            eval_seed,
            &base,
        )?;
        Ok(vec![
            Metric::new("schedulable", e.schedulable),
            Metric::new("service_level", e.service_level),
            Metric::new("switch_rate", e.switch_rate),
            Metric::new("task_switch_rate", e.task_switch_rate),
            Metric::new("lc_qos", e.lc_qos),
            Metric::new("hc_miss_rate", e.hc_miss_rate),
        ])
    }
}

/// The automotive arena's simulation window. The Bosch period table spans
/// 1 ms – 1 s, so one second releases a full hyperperiod's worth of the
/// slowest bin while the 1 ms bin already contributes ~10³ jobs per task;
/// at 10³ runnables a unit simulates roughly 10⁵ jobs.
const AUTOMOTIVE_HORIZON_SECS: u64 = 1;

/// `automotive`: the policy roster races over Bosch-calibrated task sets —
/// engine-style period/share bins, factor-matrix BCET/ACET/WCET triples,
/// and per-task fitted Weibull execution times — as the bound utilisation
/// varies. Points are policy-major like `fig5`/`policy_arena`, and the
/// evaluation seed again depends only on `(u_index, replica)`, so the
/// per-point comparison is paired. The runnable count rides in
/// `spec.params`: changing the scale changes the fingerprint, and a store
/// generated at one scale refuses to resume at another.
fn automotive(opts: &CatalogOptions) -> Result<Campaign, ExpError> {
    let seed = opts.seed.unwrap_or(17);
    let replicas = opts.sets.unwrap_or(50);
    let runnables = opts.runnables.unwrap_or(1000);
    // The default axis brackets the design point: automotive sets are
    // generated against a budget utilisation, so the interesting spread —
    // how much LC service each policy salvages once Weibull tails start
    // forcing switches — shows up well below the synthetic arena's
    // overload axis.
    let u_values: Vec<f64> = opts.points.clone().unwrap_or_else(|| vec![0.5, 0.7, 0.9]);
    let config = AutomotiveConfig {
        runnables,
        ..AutomotiveConfig::default()
    };
    // Gate both the roster and the generator before any unit runs: a bad
    // runnable count or a corrupted calibration table would otherwise fail
    // every unit, thousands of units into the campaign.
    let lint = mc_lint::lint_policy_roster(&PolicySpec::arena_roster());
    if lint.has_errors() {
        return Err(ExpError::Config(format!(
            "policy roster failed lint:\n{lint}"
        )));
    }
    let lint = mc_lint::lint_automotive_config(&config);
    if lint.has_errors() {
        return Err(ExpError::Config(format!(
            "automotive generator failed lint:\n{lint}"
        )));
    }
    let roster = PolicySpec::arena_roster();
    let mut points = Vec::new();
    for (pi, policy) in roster.iter().enumerate() {
        for (ui, &u) in u_values.iter().enumerate() {
            points.push(PointSpec::new(
                format!("{}/u{u:.2}", policy.name()),
                vec![
                    Param::new("policy", pi as f64),
                    Param::new("u", u),
                    Param::new("u_index", ui as f64),
                ],
            ));
        }
    }
    let spec = CampaignSpec {
        name: "automotive".into(),
        seed,
        params: vec![Param::new("runnables", runnables as f64)],
        points,
        replicas,
    };
    Ok(Campaign {
        spec,
        runner: Box::new(AutomotiveRunner {
            roster,
            u_values,
            seed,
            config,
        }),
    })
}

struct AutomotiveRunner {
    roster: Vec<PolicySpec>,
    u_values: Vec<f64>,
    seed: u64,
    config: AutomotiveConfig,
}

impl UnitRunner for AutomotiveRunner {
    fn run_unit(&self, unit: &WorkUnit, _inner_threads: usize) -> Result<Vec<Metric>, ExpError> {
        let u_count = self.u_values.len();
        let policy = &self.roster[unit.point / u_count];
        let u_index = unit.point % u_count;
        let u = self.u_values[u_index];
        // Policy-independent seed: every policy sees the same task sets.
        let eval_seed = derive_set_seed(self.seed, u_index, unit.replica);
        let base = SimConfig::new(Duration::from_secs(AUTOMOTIVE_HORIZON_SECS));
        let e = evaluate_arena_automotive_one_set(
            u,
            &arena_wcet(),
            policy,
            &self.config,
            eval_seed,
            &base,
        )?;
        Ok(vec![
            Metric::new("schedulable", e.schedulable),
            Metric::new("service_level", e.service_level),
            Metric::new("switch_rate", e.switch_rate),
            Metric::new("task_switch_rate", e.task_switch_rate),
            Metric::new("lc_qos", e.lc_qos),
            Metric::new("hc_miss_rate", e.hc_miss_rate),
        ])
    }
}

fn exec_err(e: mc_exec::ExecError) -> ExpError {
    ExpError::Config(format!("benchmark error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_campaign, RunConfig};
    use crate::store::Store;

    #[test]
    fn unknown_campaigns_name_the_known_ones() {
        let err = build("fig6", &CatalogOptions::default()).unwrap_err();
        assert!(err.to_string().contains("fig5"), "{err}");
    }

    #[test]
    fn rebuild_round_trips_every_catalog_campaign() {
        let cases: Vec<(&str, CatalogOptions)> = vec![
            (
                "fig5",
                CatalogOptions {
                    sets: Some(3),
                    points: Some(vec![0.5, 0.7]),
                    seed: Some(42),
                    ..CatalogOptions::default()
                },
            ),
            (
                "table2",
                CatalogOptions {
                    samples: Some(400),
                    ..CatalogOptions::default()
                },
            ),
            ("ablation_sigma", CatalogOptions::default()),
            (
                "policy_arena",
                CatalogOptions {
                    sets: Some(2),
                    points: Some(vec![0.5, 0.8]),
                    seed: Some(9),
                    ..CatalogOptions::default()
                },
            ),
            ("policy_arena", CatalogOptions::default()),
            (
                "automotive",
                CatalogOptions {
                    sets: Some(2),
                    points: Some(vec![0.6]),
                    seed: Some(3),
                    runnables: Some(60),
                    ..CatalogOptions::default()
                },
            ),
            ("automotive", CatalogOptions::default()),
        ];
        for (name, opts) in cases {
            let original = build(name, &opts).unwrap();
            let rebuilt = rebuild(&original.spec).unwrap();
            assert_eq!(rebuilt.spec, original.spec, "{name}");
            assert_eq!(
                rebuilt.spec.fingerprint(),
                original.spec.fingerprint(),
                "{name}"
            );
        }
    }

    #[test]
    fn rebuild_rejects_tampered_and_unknown_specs() {
        let mut spec = build("ablation_sigma", &CatalogOptions::default())
            .unwrap()
            .spec;
        spec.points[0].label = "m11".into();
        assert!(matches!(
            rebuild(&spec).unwrap_err(),
            ExpError::Mismatch { .. }
        ));
        let mut unknown = spec;
        unknown.name = "fig6".into();
        assert!(matches!(
            rebuild(&unknown).unwrap_err(),
            ExpError::Config(_)
        ));
    }

    #[test]
    fn fig5_axis_is_policy_major_with_paper_defaults() {
        let c = build("fig5", &CatalogOptions::default()).unwrap();
        assert_eq!(c.spec.replicas, 200);
        assert_eq!(c.spec.seed, 5);
        assert_eq!(c.spec.points.len(), 5 * 6, "5 policies × 6 utilisations");
        assert_eq!(c.spec.points[0].label, "chebyshev-ga/u0.40");
        assert_eq!(c.spec.points[6].label, "lambda-range-[0.2500,1]/u0.40");
        assert_eq!(c.spec.points[29].label, "acet/u0.90");
        assert_eq!(c.spec.points[7].param("u"), Some(0.5));
        assert_eq!(c.spec.points[7].param("u_index"), Some(1.0));
    }

    #[test]
    fn fig5_units_reproduce_the_legacy_batch_stream() {
        // Tiny configuration: ACET policy only takes microseconds per set.
        let opts = CatalogOptions {
            sets: Some(3),
            points: Some(vec![0.5]),
            ..CatalogOptions::default()
        };
        let c = build("fig5", &opts).unwrap();
        // ACET is the last policy → point index 4 (4 policies before it × 1 u).
        let acet_point = 4;
        let unit = c.spec.unit(acet_point * 3 + 1);
        let metrics = c.runner.run_unit(&unit, 1).unwrap();
        let expected = evaluate_policy_one_set(
            0.5,
            &WcetPolicy::Acet,
            &GeneratorConfig::default(),
            derive_set_seed(5, 0, 1),
            1,
        )
        .unwrap();
        assert_eq!(metrics[2].name, "objective");
        assert_eq!(metrics[2].value.to_bits(), expected.objective.to_bits());
    }

    #[test]
    fn table2_campaign_matches_the_legacy_binary_cells() {
        let opts = CatalogOptions {
            samples: Some(400),
            ..CatalogOptions::default()
        };
        let c = build("table2", &opts).unwrap();
        assert_eq!(c.spec.replicas, 1);
        assert_eq!(c.spec.points.len(), 5 * 5, "5 benchmarks × n ∈ 0..=4");
        // Unit for qsort-100 (suite index 0) at n=2.
        let metrics = c.runner.run_unit(&c.spec.unit(2), 1).unwrap();
        let suite = benchmarks::table2_suite().unwrap();
        let trace = suite[0].sample_trace(400, 200).unwrap();
        let s = trace.summary().unwrap();
        let level = s.mean() + 2.0 * s.std_dev();
        assert_eq!(metrics[0].value, one_sided_bound(2.0));
        assert_eq!(
            metrics[1].value.to_bits(),
            trace.overrun_rate(level).unwrap().rate().to_bits()
        );
    }

    #[test]
    fn policy_arena_axis_is_policy_major_over_the_roster() {
        let c = build("policy_arena", &CatalogOptions::default()).unwrap();
        assert_eq!(c.spec.replicas, 200);
        assert_eq!(c.spec.seed, 11);
        assert_eq!(c.spec.points.len(), 5 * 6, "5 policies × 6 utilisations");
        assert_eq!(c.spec.points[0].label, "edf_vd_drop/u0.60");
        assert_eq!(c.spec.points[6].label, "liu_degrade_0.50/u0.60");
        assert_eq!(c.spec.points[29].label, "boudjadar_combined_0.50/u1.30");
        assert_eq!(c.spec.points[13].param("u"), Some(0.8));
        assert_eq!(c.spec.points[13].param("u_index"), Some(1.0));
        assert_eq!(c.spec.points[13].param("policy"), Some(2.0));
    }

    #[test]
    fn policy_arena_units_share_task_sets_across_policies() {
        // The paired-comparison contract: the evaluation seed ignores the
        // policy index, so drop-all and degrade simulate the same sets
        // with the same sampled execution times — their switch rates on a
        // shared replica agree bit-for-bit.
        let opts = CatalogOptions {
            sets: Some(2),
            points: Some(vec![0.5]),
            ..CatalogOptions::default()
        };
        let c = build("policy_arena", &opts).unwrap();
        // Point 0 = edf_vd_drop/u0.50, point 1 = liu_degrade_0.50/u0.50.
        let drop = c.runner.run_unit(&c.spec.unit(1), 1).unwrap();
        let degrade = c.runner.run_unit(&c.spec.unit(3), 1).unwrap();
        let col = |ms: &[Metric], name: &str| {
            ms.iter().find(|m| m.name == name).map(|m| m.value).unwrap()
        };
        assert_eq!(
            col(&drop, "switch_rate").to_bits(),
            col(&degrade, "switch_rate").to_bits()
        );
        // Every unit reports the full six-column schema, in order.
        let schema: Vec<&str> = drop.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            schema,
            [
                "schedulable",
                "service_level",
                "switch_rate",
                "task_switch_rate",
                "lc_qos",
                "hc_miss_rate",
            ]
        );
    }

    #[test]
    fn policy_arena_campaign_runs_and_aggregates_end_to_end() {
        let opts = CatalogOptions {
            sets: Some(2),
            points: Some(vec![0.5]),
            ..CatalogOptions::default()
        };
        let c = build("policy_arena", &opts).unwrap();
        let mut store = Store::in_memory(&c.spec);
        let summary = run_campaign(
            &c.spec,
            c.runner.as_ref(),
            &mut store,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(summary.ran, 5 * 2, "5 policies × 1 u × 2 replicas");
        let aggs = crate::aggregate::aggregate(&c.spec, store.records()).unwrap();
        assert_eq!(aggs.len(), 5, "one row per policy at the single u");
        for agg in &aggs {
            let s = agg.mean("schedulable").unwrap();
            assert!((0.0..=1.0).contains(&s), "{}: {s}", agg.label);
            assert!(agg.mean("lc_qos").is_some());
        }
    }

    #[test]
    fn automotive_axis_carries_scale_in_its_fingerprint() {
        let c = build("automotive", &CatalogOptions::default()).unwrap();
        assert_eq!(c.spec.replicas, 50);
        assert_eq!(c.spec.seed, 17);
        assert_eq!(c.spec.points.len(), 5 * 3, "5 policies × 3 utilisations");
        assert_eq!(c.spec.points[0].label, "edf_vd_drop/u0.50");
        assert_eq!(c.spec.points[14].label, "boudjadar_combined_0.50/u0.90");
        assert_eq!(c.spec.points[4].param("u"), Some(0.7));
        assert_eq!(c.spec.points[4].param("u_index"), Some(1.0));
        assert_eq!(c.spec.points[4].param("policy"), Some(1.0));
        // Paper scale rides in params, so a store generated at 10³
        // runnables refuses to resume at a reduced smoke scale.
        assert_eq!(c.spec.params.len(), 1);
        assert_eq!(c.spec.params[0].name, "runnables");
        assert_eq!(c.spec.params[0].value, 1000.0);
        let small = build(
            "automotive",
            &CatalogOptions {
                runnables: Some(60),
                ..CatalogOptions::default()
            },
        )
        .unwrap();
        assert_ne!(small.spec.fingerprint(), c.spec.fingerprint());
    }

    #[test]
    fn automotive_units_reproduce_the_paired_arena_stream() {
        use chebymc_core::pipeline::evaluate_arena_automotive_one_set;
        let opts = CatalogOptions {
            sets: Some(2),
            points: Some(vec![0.6]),
            runnables: Some(60),
            ..CatalogOptions::default()
        };
        let c = build("automotive", &opts).unwrap();
        // Point 1 = liu_degrade_0.50/u0.60 (policy index 1, one u value),
        // replica 1 of 2 → unit index 3.
        let unit = c.spec.unit(3);
        let metrics = c.runner.run_unit(&unit, 1).unwrap();
        let cfg = AutomotiveConfig {
            runnables: 60,
            ..AutomotiveConfig::default()
        };
        let expected = evaluate_arena_automotive_one_set(
            0.6,
            &arena_wcet(),
            &PolicySpec::arena_roster()[1],
            &cfg,
            derive_set_seed(17, 0, 1),
            &SimConfig::new(Duration::from_secs(AUTOMOTIVE_HORIZON_SECS)),
        )
        .unwrap();
        assert_eq!(metrics[4].name, "lc_qos");
        assert_eq!(metrics[4].value.to_bits(), expected.lc_qos.to_bits());
        assert_eq!(metrics[2].value.to_bits(), expected.switch_rate.to_bits());
    }

    #[test]
    fn automotive_campaign_runs_and_aggregates_end_to_end() {
        let opts = CatalogOptions {
            sets: Some(2),
            points: Some(vec![0.6]),
            runnables: Some(60),
            ..CatalogOptions::default()
        };
        let c = build("automotive", &opts).unwrap();
        let mut store = Store::in_memory(&c.spec);
        let summary = run_campaign(
            &c.spec,
            c.runner.as_ref(),
            &mut store,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(summary.ran, 5 * 2, "5 policies × 1 u × 2 replicas");
        let aggs = crate::aggregate::aggregate(&c.spec, store.records()).unwrap();
        assert_eq!(aggs.len(), 5, "one row per policy at the single u");
        for agg in &aggs {
            let s = agg.mean("schedulable").unwrap();
            assert!((0.0..=1.0).contains(&s), "{}: {s}", agg.label);
            assert!(agg.mean("lc_qos").is_some());
        }
    }

    #[test]
    fn ablation_campaign_runs_end_to_end() {
        let c = build("ablation_sigma", &CatalogOptions::default()).unwrap();
        assert_eq!(c.spec.points.len(), 5);
        let mut store = Store::in_memory(&c.spec);
        // Only the two cheapest points, via sharding-free manual units: run
        // the full (tiny) campaign — the reference trace dominates and is
        // sampled once.
        let summary = run_campaign(
            &c.spec,
            c.runner.as_ref(),
            &mut store,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(summary.ran, 5);
        let aggs = crate::aggregate::aggregate(&c.spec, store.records()).unwrap();
        assert_eq!(aggs[0].label, "m10");
        let pop = aggs[0].mean("pop_sigma").unwrap();
        let sample = aggs[0].mean("sample_sigma").unwrap();
        assert!(sample > pop, "Bessel correction widens σ at m=10");
    }
}
