//! mc-exp — sharded, resumable experiment campaigns with a crash-safe
//! result store.
//!
//! A [`CampaignSpec`] declares an experiment as *axis points × task-set
//! replicas*; the spec expands into a flat list of deterministic
//! [`WorkUnit`]s, each seeded as `hash(campaign_seed, point, replica)`
//! (the workspace seed contract,
//! [`chebymc_core::pipeline::derive_set_seed`]), so any shard subset of
//! the units — run in any order, on any thread count, in any process —
//! reproduces bit-identical results.
//!
//! * [`spec`] — campaign declaration, unit expansion, the campaign
//!   fingerprint (the compatibility contract for resume/shard/merge).
//! * [`store`] — the append-only JSONL result store: a schema-versioned
//!   header plus one fsync'd record per completed unit. On restart the
//!   store replays itself, truncates a torn tail, and reports which units
//!   are already done.
//! * [`run`] — the campaign runner: lints the spec (`E0xx`), filters the
//!   shard's pending units, dispatches them over an [`mc_par::WorkerPool`]
//!   with a [`mc_par::ThreadBudget`] split between units and inner GA
//!   parallelism, and flushes records to the store *in session order* so
//!   an uninterrupted store is byte-identical across thread counts.
//! * [`fault`] — deterministic crash-schedule sweeps: the store driven
//!   through seed-derived crash/resume/merge interleavings on a simulated
//!   disk (`mc_fault::SimDisk`), asserting the crash invariant and
//!   canonical byte identity (`chebymc fault sweep`).
//! * [`accounting`] — shared completion arithmetic (points complete,
//!   per-shard progress) used by the runner, `chebymc exp status`, and
//!   the mc-serve coordinator's lease table.
//! * [`progress`] — the throttled stderr progress/ETA reporter.
//! * [`aggregate`] — per-point means (in replica order, preserving the
//!   legacy f64 summation order) and CSV export.
//! * [`catalog`] — the built-in campaign definitions (`fig5`, `table2`,
//!   `ablation_sigma`) the bench binaries and `chebymc exp` share.

#![warn(missing_docs)]

pub mod accounting;
pub mod aggregate;
pub mod catalog;
pub mod fault;
pub mod progress;
pub mod run;
pub mod spec;
pub mod store;

pub use accounting::{points_complete, shard_progress, ShardProgress};
pub use aggregate::{aggregate, export_points_csv, export_units_csv, PointAggregate};
pub use catalog::{Campaign, CatalogOptions};
pub use fault::{sweep, Sabotage, SweepConfig, SweepReport, Violation};
pub use run::{run_campaign, RunConfig, RunSummary, Shard, UnitRunner};
pub use spec::{unit_seed, CampaignSpec, Param, PointSpec, WorkUnit};
pub use store::{Metric, Store, StoreHeader, UnitRecord, SCHEMA_VERSION};

use std::error::Error;
use std::fmt;

/// Errors produced by the experiment subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExpError {
    /// An I/O failure on the result store or an export file.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A store file violates its own format (corruption that truncating
    /// the tail cannot repair, duplicate units, seed mismatches).
    Store {
        /// The offending path (or `<memory>`).
        path: String,
        /// What was violated.
        detail: String,
    },
    /// A store belongs to a different campaign (fingerprint or schema
    /// version mismatch) — resuming or merging it would silently mix
    /// incompatible results.
    Mismatch {
        /// The offending path (or `<memory>`).
        path: String,
        /// What disagreed.
        detail: String,
    },
    /// The campaign failed its `E0xx` static analysis; the report carries
    /// every finding.
    Lint(mc_lint::LintReport),
    /// A unit runner failed inside the core scheme.
    Core(chebymc_core::CoreError),
    /// A malformed request (unknown campaign, bad shard syntax, …).
    Config(String),
    /// Aggregation was asked for before every replica of a point
    /// completed.
    Incomplete(String),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Io { path, source } => write!(f, "{path}: {source}"),
            ExpError::Store { path, detail } => write!(f, "{path}: corrupt store: {detail}"),
            ExpError::Mismatch { path, detail } => {
                write!(f, "{path}: store belongs to a different campaign: {detail}")
            }
            ExpError::Lint(report) => {
                write!(
                    f,
                    "campaign failed static analysis with {} error(s)",
                    report.count(mc_lint::Severity::Error)
                )
            }
            ExpError::Core(e) => write!(f, "unit failed: {e}"),
            ExpError::Config(msg) => write!(f, "{msg}"),
            ExpError::Incomplete(msg) => write!(f, "campaign incomplete: {msg}"),
        }
    }
}

impl Error for ExpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExpError::Io { source, .. } => Some(source),
            ExpError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<chebymc_core::CoreError> for ExpError {
    fn from(e: chebymc_core::CoreError) -> Self {
        ExpError::Core(e)
    }
}

impl From<mc_lint::LintReport> for ExpError {
    fn from(report: mc_lint::LintReport) -> Self {
        ExpError::Lint(report)
    }
}

/// Wraps an I/O error with its path.
pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> ExpError {
    ExpError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// Wraps an I/O error with a display label (for stores that are not
/// backed by a filesystem path, e.g. simulated disks).
pub(crate) fn label_io_err(label: &str, source: std::io::Error) -> ExpError {
    ExpError::Io {
        path: label.to_string(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = ExpError::Store {
            path: "run.jsonl".into(),
            detail: "duplicate unit 3".into(),
        };
        assert!(e.to_string().contains("run.jsonl"));
        assert!(e.to_string().contains("duplicate unit 3"));
        let e = ExpError::Mismatch {
            path: "x".into(),
            detail: "fingerprint".into(),
        };
        assert!(e.to_string().contains("different campaign"));
        assert!(ExpError::Config("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn lint_reports_convert() {
        let mut report = mc_lint::LintReport::new();
        report.push(mc_lint::Diagnostic::new(
            mc_lint::Code::E001,
            "campaign:x",
            "empty axis",
        ));
        let e: ExpError = report.into();
        assert!(e.to_string().contains("1 error"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExpError>();
    }
}
