//! Crash-schedule sweeps over the store's resume path.
//!
//! Each swept *schedule* drives one small campaign to completion against
//! an `mc_fault::SimDisk`, through repeated sessions of
//! run → crash → resume, with every I/O operation subject to the
//! seed-derived fault schedule. After every session the sweep checks the
//! store's documented crash invariant, and at the end it checks byte
//! identity:
//!
//! 1. **Acked records survive.** Any record whose [`Store::append`]
//!    returned `Ok` (write + fsync acknowledged) must be replayed as
//!    complete by every later resume, byte-for-byte. The converse is NOT
//!    required: an unacknowledged record whose bytes happened to reach
//!    the disk may legitimately replay too.
//! 2. **Canonical byte identity.** Once the campaign completes, the
//!    store's [`Store::canonical_lines`] must equal those of an
//!    uninterrupted in-memory run of the same campaign.
//!
//! Every violation carries the schedule seed that reproduces it
//! (`chebymc fault sweep --seed <seed> --count 1`). A sharded variant
//! runs the campaign as two independently-crashing shards and checks the
//! merge instead, covering the run → crash → resume → merge path.

use crate::spec::{CampaignSpec, Param, PointSpec};
use crate::store::{Metric, Store, UnitRecord};
use mc_fault::gen::{spec_shape, SpecShape};
use mc_fault::{mix64, FaultRng, FaultSchedule, SimDisk};
use std::collections::BTreeMap;

/// Configuration of a fault sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Root seed; schedule `i` uses seed `seed + i`, so a violation's
    /// printed seed replays directly with `--count 1`.
    pub seed: u64,
    /// Number of distinct crash schedules to sweep.
    pub count: u64,
    /// Operation horizon per session: each faulty session crashes within
    /// its first `ops` I/O operations.
    pub ops: u64,
    /// Sanity-check mutation to inject (tests only); `None` in real
    /// sweeps.
    pub sabotage: Option<Sabotage>,
}

impl SweepConfig {
    /// A sweep of `count` schedules from `seed` with the default
    /// operation horizon (16 — wide enough to crash anywhere from the
    /// initial read to deep in the appends).
    #[must_use]
    pub fn new(seed: u64, count: u64) -> Self {
        SweepConfig {
            seed,
            count,
            ops: 16,
            sabotage: None,
        }
    }
}

/// Deliberate store corruptions for mutation-style sanity checks: a
/// sweep over a sabotaged disk must report a violation, proving the
/// checker can actually fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// After the first crash recovery, silently drop the last durable
    /// line — the "acked record lost" bug the invariant exists to catch.
    DropDurableRecord,
}

/// One invariant violation, reproducible from its schedule seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The schedule seed (pass to `--seed` with `--count 1` to replay).
    pub seed: u64,
    /// The crash/resume cycle in which the violation surfaced.
    pub cycle: u64,
    /// What was violated.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule seed {} (cycle {}): {}",
            self.seed, self.cycle, self.detail
        )
    }
}

/// The outcome of a sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Schedules completed.
    pub schedules: u64,
    /// Crash/resume cycles driven across all schedules.
    pub cycles: u64,
    /// Crashes that actually fired.
    pub crashes: u64,
    /// Non-crash faults (failed/short writes, failed fsyncs) injected.
    pub injected_errors: u64,
    /// Invariant violations, each with its reproducing seed.
    pub violations: Vec<Violation>,
}

impl SweepReport {
    /// Whether the sweep passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Upper bound on faulty sessions per schedule before the sweep forces a
/// fault-free session to finish the campaign. With a crash guaranteed in
/// every faulty session's first `ops` operations, progress per cycle can
/// stall, so termination comes from this cap.
const MAX_FAULTY_CYCLES: u64 = 32;

/// The campaign a schedule seed sweeps: a small random shape (1–5 points
/// × 1–4 replicas) so different seeds also vary the workload.
fn sweep_spec(schedule_seed: u64) -> CampaignSpec {
    let shape = spec_shape(&mut FaultRng::new(mix64(schedule_seed, 0xCAFE)));
    spec_from_shape("fault-sweep", &shape)
}

/// Builds a concrete [`CampaignSpec`] from an `mc_fault` shape.
#[must_use]
pub fn spec_from_shape(name: &str, shape: &SpecShape) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        seed: shape.seed,
        params: vec![],
        points: shape
            .point_values
            .iter()
            .enumerate()
            .map(|(i, v)| PointSpec::new(format!("p{i}"), vec![Param::new("u", *v)]))
            .collect(),
        replicas: shape.replicas,
    }
}

/// The deterministic record a sweep writes for `unit` — a stand-in for a
/// real unit runner, pure in the unit's derived seed.
fn unit_record(spec: &CampaignSpec, index: usize) -> UnitRecord {
    let u = spec.unit(index);
    UnitRecord {
        unit: u.index,
        point: u.point,
        replica: u.replica,
        seed: u.seed,
        metrics: vec![Metric::new(
            "objective",
            (u.seed % 1_000_003) as f64 / 1_000_003.0,
        )],
    }
}

/// What one crash/resume session did.
enum Session {
    /// Every pending unit was appended and acknowledged.
    Completed,
    /// An injected fault ended the session early.
    Died,
    /// The store replay itself broke an invariant.
    Violated(String),
}

/// Runs one session: resume the store from the disk, verify every acked
/// record replayed, then append pending units until done or killed.
fn run_session(
    disk: &SimDisk,
    spec: &CampaignSpec,
    acked: &mut BTreeMap<usize, UnitRecord>,
) -> Session {
    let io = Box::new(disk.open());
    let (mut store, _info) = match Store::create_or_resume_io(io, "<sim>", spec) {
        Ok(v) => v,
        // Injected I/O failures end the session; corruption errors are
        // invariant violations (the disk only ever holds bytes the store
        // itself wrote, so resume must never see interior corruption).
        Err(crate::ExpError::Io { .. }) => return Session::Died,
        Err(e) => return Session::Violated(format!("resume failed: {e}")),
    };
    for (unit, rec) in acked.iter() {
        if !store.is_complete(*unit) {
            return Session::Violated(format!("acked unit {unit} lost after resume"));
        }
        match store.records().iter().find(|r| r.unit == *unit) {
            Some(replayed) if replayed == rec => {}
            Some(_) => {
                return Session::Violated(format!("acked unit {unit} replayed with altered bytes"))
            }
            None => return Session::Violated(format!("acked unit {unit} has no record")),
        }
    }
    for index in 0..spec.total_units() {
        if store.is_complete(index) {
            continue;
        }
        let rec = unit_record(spec, index);
        match store.append(rec.clone()) {
            Ok(()) => {
                acked.insert(index, rec);
            }
            Err(crate::ExpError::Io { .. }) => return Session::Died,
            Err(e) => return Session::Violated(format!("append failed: {e}")),
        }
    }
    Session::Completed
}

/// Drives one schedule's campaign to completion through crash/resume
/// cycles on `disk`, returning the first violation if any.
///
/// # Errors
///
/// The violation, tagged with `schedule_seed` for reproduction.
pub fn check_campaign(
    schedule_seed: u64,
    ops: u64,
    sabotage: Option<Sabotage>,
    report: &mut SweepReport,
) -> Result<(), Violation> {
    let spec = sweep_spec(schedule_seed);
    let disk = SimDisk::new();
    let mut acked: BTreeMap<usize, UnitRecord> = BTreeMap::new();
    let mut sabotaged = false;
    let violation = |cycle: u64, detail: String| Violation {
        seed: schedule_seed,
        cycle,
        detail,
    };

    let mut completed = false;
    for cycle in 0..=MAX_FAULTY_CYCLES {
        let faulty = cycle < MAX_FAULTY_CYCLES;
        let schedule = if faulty {
            FaultSchedule::from_seed(mix64(schedule_seed, cycle), ops)
        } else {
            FaultSchedule::none()
        };
        disk.set_schedule(schedule);
        let session = run_session(&disk, &spec, &mut acked);
        report.cycles += 1;
        // End of session: crash (schedule) or clean process exit.
        let crashed = disk.is_crashed();
        disk.recover();
        if sabotage == Some(Sabotage::DropDurableRecord) && crashed && !sabotaged {
            sabotaged = disk.sabotage_drop_last_line();
        }
        match session {
            Session::Violated(detail) => return Err(violation(cycle, detail)),
            Session::Died => {}
            Session::Completed => {
                completed = true;
                break;
            }
        }
    }
    if !completed {
        // Unreachable by construction (the last cycle is fault-free),
        // kept as a checked invariant rather than an assert.
        return Err(violation(
            MAX_FAULTY_CYCLES,
            "campaign did not complete within the cycle budget".into(),
        ));
    }

    let stats = disk.stats();
    report.crashes += stats.crashes;
    report.injected_errors += stats.injected_errors;

    // Final oracle: the surviving store must be canonically byte-identical
    // to an uninterrupted run of the same campaign.
    disk.set_schedule(FaultSchedule::none());
    let (survivor, _info) = Store::create_or_resume_io(Box::new(disk.open()), "<sim>", &spec)
        .map_err(|e| violation(MAX_FAULTY_CYCLES, format!("final reload failed: {e}")))?;
    let mut reference = Store::in_memory(&spec);
    for index in 0..spec.total_units() {
        reference
            .append(unit_record(&spec, index))
            .expect("reference run cannot fail");
    }
    if survivor.canonical_lines() != reference.canonical_lines() {
        return Err(violation(
            MAX_FAULTY_CYCLES,
            "canonical bytes differ from an uninterrupted run".into(),
        ));
    }
    Ok(())
}

/// Sharded variant: the campaign runs as two shards (units split
/// even/odd), each on its own independently-crashing disk, then the two
/// stores are merged and compared against the uninterrupted reference —
/// the full run → crash → resume → merge path.
///
/// # Errors
///
/// The violation, tagged with `schedule_seed` for reproduction.
pub fn check_sharded_campaign(
    schedule_seed: u64,
    ops: u64,
    report: &mut SweepReport,
) -> Result<(), Violation> {
    let spec = sweep_spec(schedule_seed);
    let violation = |cycle: u64, detail: String| Violation {
        seed: schedule_seed,
        cycle,
        detail,
    };
    let mut shard_stores = Vec::new();
    for shard in 0..2u64 {
        let disk = SimDisk::new();
        let mut acked: BTreeMap<usize, UnitRecord> = BTreeMap::new();
        let shard_units: Vec<usize> = (0..spec.total_units())
            .filter(|u| (*u as u64) % 2 == shard)
            .collect();
        let mut completed = false;
        for cycle in 0..=MAX_FAULTY_CYCLES {
            let faulty = cycle < MAX_FAULTY_CYCLES;
            let schedule = if faulty {
                FaultSchedule::from_seed(mix64(schedule_seed, (shard << 32) | cycle), ops)
            } else {
                FaultSchedule::none()
            };
            disk.set_schedule(schedule);
            report.cycles += 1;
            let io = Box::new(disk.open());
            let session = match Store::create_or_resume_io(io, "<sim-shard>", &spec) {
                Ok((mut store, _)) => {
                    let mut outcome = Session::Completed;
                    for &index in &shard_units {
                        if acked.contains_key(&index) && !store.is_complete(index) {
                            outcome = Session::Violated(format!(
                                "acked unit {index} lost after shard resume"
                            ));
                            break;
                        }
                        if store.is_complete(index) {
                            continue;
                        }
                        let rec = unit_record(&spec, index);
                        match store.append(rec.clone()) {
                            Ok(()) => {
                                acked.insert(index, rec);
                            }
                            Err(crate::ExpError::Io { .. }) => {
                                outcome = Session::Died;
                                break;
                            }
                            Err(e) => {
                                outcome = Session::Violated(format!("shard append failed: {e}"));
                                break;
                            }
                        }
                    }
                    outcome
                }
                Err(crate::ExpError::Io { .. }) => Session::Died,
                Err(e) => Session::Violated(format!("shard resume failed: {e}")),
            };
            disk.recover();
            match session {
                Session::Violated(detail) => return Err(violation(cycle, detail)),
                Session::Died => {}
                Session::Completed => {
                    completed = true;
                    break;
                }
            }
        }
        if !completed {
            return Err(violation(
                MAX_FAULTY_CYCLES,
                format!("shard {shard} did not complete within the cycle budget"),
            ));
        }
        let stats = disk.stats();
        report.crashes += stats.crashes;
        report.injected_errors += stats.injected_errors;
        disk.set_schedule(FaultSchedule::none());
        let (store, _) = Store::create_or_resume_io(Box::new(disk.open()), "<sim-shard>", &spec)
            .map_err(|e| violation(MAX_FAULTY_CYCLES, format!("shard reload failed: {e}")))?;
        shard_stores.push(store);
    }

    let merged = Store::merge(&shard_stores)
        .map_err(|e| violation(MAX_FAULTY_CYCLES, format!("merge failed: {e}")))?;
    let mut reference = Store::in_memory(&spec);
    for index in 0..spec.total_units() {
        reference
            .append(unit_record(&spec, index))
            .expect("reference run cannot fail");
    }
    if merged.canonical_lines() != reference.canonical_lines() {
        return Err(violation(
            MAX_FAULTY_CYCLES,
            "merged canonical bytes differ from an uninterrupted run".into(),
        ));
    }
    Ok(())
}

/// Sweeps `cfg.count` distinct schedules with seeds `cfg.seed + i`
/// (consecutive seeds are fine — every consumer mixes the seed through
/// `mix64` before use, and plain addition is what lets a printed
/// violation seed be replayed verbatim with `--seed <it> --count 1`),
/// alternating the single-store and sharded-merge checkers, and collects
/// every violation with its reproducing seed.
#[must_use]
pub fn sweep(cfg: &SweepConfig) -> SweepReport {
    let mut report = SweepReport::default();
    for i in 0..cfg.count {
        let schedule_seed = cfg.seed.wrapping_add(i);
        // The checker is chosen from the schedule seed itself (not the
        // loop index) so replaying one seed re-runs the same checker.
        let result = if schedule_seed % 4 == 3 && cfg.sabotage.is_none() {
            // A quarter of the schedules exercise the sharded merge path.
            check_sharded_campaign(schedule_seed, cfg.ops, &mut report)
        } else {
            check_campaign(schedule_seed, cfg.ops, cfg.sabotage, &mut report)
        };
        report.schedules += 1;
        if let Err(v) = result {
            report.violations.push(v);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_is_clean_and_actually_faults() {
        let report = sweep(&SweepConfig::new(0xFA017, 24));
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.schedules, 24);
        assert!(report.crashes > 0, "sweep never crashed: {report:?}");
        assert!(
            report.injected_errors > 0,
            "sweep never injected an error: {report:?}"
        );
        assert!(report.cycles > report.schedules);
    }

    #[test]
    fn sweeps_are_deterministic() {
        let a = sweep(&SweepConfig::new(12, 6));
        let b = sweep(&SweepConfig::new(12, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn sabotage_is_caught_with_a_reproducing_seed() {
        let cfg = SweepConfig {
            sabotage: Some(Sabotage::DropDurableRecord),
            ..SweepConfig::new(0xBAD, 40)
        };
        let report = sweep(&cfg);
        assert!(
            !report.ok(),
            "sabotaged sweep must catch at least one dropped record"
        );
        let v = &report.violations[0];
        // The printed seed replays the violation on its own...
        let mut single = SweepReport::default();
        let replay = check_campaign(v.seed, cfg.ops, cfg.sabotage, &mut single);
        assert_eq!(replay.unwrap_err().detail, v.detail);
        assert!(v.to_string().contains(&v.seed.to_string()));
        // ...including through the sweep entry point the CLI uses
        // (`--seed <it> --count 1`).
        let replayed = sweep(&SweepConfig {
            seed: v.seed,
            count: 1,
            ..cfg
        });
        assert_eq!(replayed.violations.len(), 1);
        assert_eq!(replayed.violations[0].detail, v.detail);
    }
}
