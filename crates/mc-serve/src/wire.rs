//! The length-prefixed JSONL wire protocol.
//!
//! A frame is an ASCII decimal byte length terminated by `\n`, followed
//! by exactly that many bytes of JSON (one serialized [`Message`]),
//! followed by a closing `\n`. The prefix makes framing independent of
//! JSON content; the trailing newline keeps a captured stream readable as
//! JSONL with interleaved length lines. Both sides treat a clean EOF at a
//! frame boundary as an orderly disconnect and anything else — a torn
//! prefix, a short payload, an oversized length — as a protocol error.

use crate::ServeError;
use mc_exp::{CampaignSpec, UnitRecord};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on one frame's payload. Specs embed their full point list,
/// so frames are kilobytes; anything near this bound is a corrupt or
/// hostile length prefix, not a campaign.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Every message either side of the protocol sends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Worker → coordinator: first frame of a connection.
    Hello {
        /// Worker display name (diagnostics only).
        worker: String,
        /// The worker's thread budget (diagnostics only).
        threads: usize,
    },
    /// Coordinator → worker: registration acknowledged.
    Welcome {
        /// The coordinator-assigned worker id.
        worker_id: u64,
    },
    /// Client → coordinator: run this campaign.
    Submit {
        /// The campaign to run.
        spec: CampaignSpec,
    },
    /// Coordinator → client: the submission is (now) the active campaign.
    Accepted {
        /// The campaign fingerprint.
        fingerprint: String,
        /// Total units of the campaign.
        total_units: usize,
        /// Units already complete in the checkpoint store (resume).
        completed: usize,
    },
    /// Coordinator → client: the submission was refused.
    Rejected {
        /// Why.
        reason: String,
    },
    /// Coordinator → worker: run one lease (an `i/n` stripe).
    Assign {
        /// Lease id (the stripe index).
        lease: u64,
        /// The campaign spec; the worker rebuilds its runner from it.
        spec: CampaignSpec,
        /// Stripe index (`shard_index/shard_count` in mc-exp terms).
        shard_index: usize,
        /// Stripe count.
        shard_count: usize,
        /// Unit indices of the stripe the store already holds — a
        /// reassigned lease resumes instead of recomputing.
        done: Vec<usize>,
    },
    /// Worker → coordinator: one completed unit of the worker's lease.
    Record {
        /// The lease the record belongs to.
        lease: u64,
        /// The unit's result record.
        record: UnitRecord,
    },
    /// Worker → coordinator: every pending unit of the lease was sent.
    LeaseDone {
        /// The finished lease.
        lease: u64,
    },
    /// Worker → coordinator: liveness signal.
    Heartbeat,
    /// Coordinator → worker: the campaign is complete; exit cleanly.
    Shutdown,
}

/// Writes one frame and flushes it.
///
/// # Errors
///
/// Serialization or socket failures.
pub fn write_frame(w: &mut dyn Write, msg: &Message) -> Result<(), ServeError> {
    let json = serde_json::to_string(msg)
        .map_err(|e| ServeError::Protocol(format!("message serialization failed: {e}")))?;
    let mut frame = json.len().to_string();
    frame.push('\n');
    frame.push_str(&json);
    frame.push('\n');
    w.write_all(frame.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean EOF at a frame boundary (the
/// peer closed in an orderly way); a torn frame is a protocol error.
///
/// # Errors
///
/// Socket failures, oversized or malformed length prefixes, short
/// payloads, and JSON that does not parse as a [`Message`].
pub fn read_frame(r: &mut dyn Read) -> Result<Option<Message>, ServeError> {
    // Length prefix: ASCII digits up to '\n'.
    let mut len: usize = 0;
    let mut digits = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if digits == 0 => return Ok(None),
            Ok(0) => return Err(ServeError::Protocol("EOF inside a length prefix".into())),
            Ok(_) => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
        match byte[0] {
            b'\n' if digits > 0 => break,
            d @ b'0'..=b'9' => {
                digits += 1;
                len = len
                    .checked_mul(10)
                    .and_then(|l| l.checked_add(usize::from(d - b'0')))
                    .filter(|&l| l <= MAX_FRAME)
                    .ok_or_else(|| ServeError::Protocol("frame length overflows".into()))?;
            }
            other => {
                return Err(ServeError::Protocol(format!(
                    "byte 0x{other:02x} in a length prefix"
                )))
            }
        }
    }
    let mut payload = vec![0u8; len + 1]; // + the closing newline
    r.read_exact(&mut payload)
        .map_err(|e| ServeError::Protocol(format!("short frame payload: {e}")))?;
    if payload.pop() != Some(b'\n') {
        return Err(ServeError::Protocol(
            "frame missing its closing newline".into(),
        ));
    }
    let json = std::str::from_utf8(&payload)
        .map_err(|_| ServeError::Protocol("frame payload is not UTF-8".into()))?;
    serde_json::from_str(json)
        .map(Some)
        .map_err(|e| ServeError::Protocol(format!("frame does not parse: {e}")))
}

/// Submits a campaign to a coordinator and returns its `Accepted` reply
/// (fingerprint, total units, units already complete).
///
/// # Errors
///
/// Connection failures, a `Rejected` reply, or protocol violations.
pub fn submit(addr: &str, spec: &CampaignSpec) -> Result<(String, usize, usize), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &Message::Submit { spec: spec.clone() })?;
    match read_frame(&mut stream)? {
        Some(Message::Accepted {
            fingerprint,
            total_units,
            completed,
        }) => Ok((fingerprint, total_units, completed)),
        Some(Message::Rejected { reason }) => Err(ServeError::Rejected(reason)),
        Some(other) => Err(ServeError::Protocol(format!(
            "unexpected reply to Submit: {other:?}"
        ))),
        None => Err(ServeError::Protocol(
            "coordinator closed without replying to Submit".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_exp::{CatalogOptions, Metric};

    fn spec() -> CampaignSpec {
        mc_exp::catalog::build("ablation_sigma", &CatalogOptions::default())
            .unwrap()
            .spec
    }

    fn roundtrip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut &buf[..]).unwrap().unwrap()
    }

    #[test]
    fn every_variant_round_trips() {
        let s = spec();
        let u = s.unit(2);
        let messages = vec![
            Message::Hello {
                worker: "w0".into(),
                threads: 4,
            },
            Message::Welcome { worker_id: 7 },
            Message::Submit { spec: s.clone() },
            Message::Accepted {
                fingerprint: s.fingerprint(),
                total_units: 5,
                completed: 2,
            },
            Message::Rejected {
                reason: "busy".into(),
            },
            Message::Assign {
                lease: 1,
                spec: s.clone(),
                shard_index: 1,
                shard_count: 3,
                done: vec![1],
            },
            Message::Record {
                lease: 1,
                record: UnitRecord {
                    unit: u.index,
                    point: u.point,
                    replica: u.replica,
                    seed: u.seed,
                    metrics: vec![Metric::new("value", 0.5)],
                },
            },
            Message::LeaseDone { lease: 1 },
            Message::Heartbeat,
            Message::Shutdown,
        ];
        for msg in &messages {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn frames_concatenate_and_clean_eof_is_none() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Heartbeat).unwrap();
        write_frame(&mut buf, &Message::LeaseDone { lease: 9 }).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(Message::Heartbeat));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(Message::LeaseDone { lease: 9 })
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_and_malformed_frames_are_protocol_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Heartbeat).unwrap();
        // Torn payload.
        let torn = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut &torn[..]),
            Err(ServeError::Protocol(_))
        ));
        // EOF inside the length prefix.
        assert!(matches!(
            read_frame(&mut &b"12"[..]),
            Err(ServeError::Protocol(_))
        ));
        // Garbage where digits belong.
        assert!(matches!(
            read_frame(&mut &b"12x\n"[..]),
            Err(ServeError::Protocol(_))
        ));
        // A length that exceeds the frame bound.
        let huge = format!("{}\n", MAX_FRAME + 1);
        assert!(matches!(
            read_frame(&mut huge.as_bytes()),
            Err(ServeError::Protocol(_))
        ));
        // A frame whose closing newline is wrong.
        let mut bad = Vec::new();
        write_frame(&mut bad, &Message::Heartbeat).unwrap();
        let last = bad.len() - 1;
        bad[last] = b'x';
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(ServeError::Protocol(_))
        ));
    }
}
