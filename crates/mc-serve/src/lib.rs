//! mc-serve — the distributed campaign service: a std-only TCP
//! coordinator that fans mc-exp campaigns out to worker processes and
//! survives the death of any of them.
//!
//! The coordinator accepts a [`CampaignSpec`](mc_exp::CampaignSpec)
//! (submitted over the wire or preloaded by the CLI), splits it into
//! *leases* — the same `i/n` unit striping `chebymc exp run --shard`
//! uses — and assigns one lease at a time to each connected worker.
//! Workers recompute nothing the coordinator already holds: an
//! assignment carries the lease's already-complete unit indices, and the
//! coordinator's own result store *is* its checkpoint — the fsync-per-
//! record, torn-tail-recovering mc-exp store, so killing the coordinator
//! loses at most one in-flight record and a restart resumes mid-campaign.
//!
//! Failure model: workers die abruptly (connection drop or heartbeat
//! silence) and their leases are reclaimed and reassigned; redelivered
//! units dedup at the store ([`Store::append_dedup`](mc_exp::Store::append_dedup)),
//! so delivery is at-least-once with exactly-once commitment. The merged
//! result is the store's canonical form — byte-identical to a serial
//! `chebymc exp run` of the same spec, which is what the in-process
//! cluster tests and the CI smoke job assert.
//!
//! * [`wire`] — the length-prefixed JSONL protocol (`Hello`/`Assign`/
//!   `Record`/…) and its framing.
//! * [`lease`] — the pure Pending → Assigned → Done lease state machine.
//! * [`coordinator`] — the TCP service: accept loop, per-connection
//!   readers, heartbeat sweeper, checkpoint store.
//! * [`worker`] — the worker loop: connect-with-retry, lease execution
//!   over an [`mc_par::WorkerPool`], in-order record streaming.
//! * [`cluster`] — the in-process "local cluster" harness (coordinator +
//!   N worker threads over loopback) driven by seed-derived
//!   [`mc_fault::ClusterPlan`]s, used by `cargo test`.
//!
//! DESIGN.md §15 documents the wire protocol, the lease/heartbeat/
//! reclaim state machine, and the checkpoint format.

#![warn(missing_docs)]

pub mod cluster;
pub mod coordinator;
pub mod lease;
pub mod wire;
pub mod worker;

pub use cluster::{run_local_cluster, ClusterReport, LocalClusterConfig};
pub use coordinator::{Coordinator, CoordinatorConfig, ServeOutcome, StoreOpener};
pub use lease::{LeaseState, LeaseTable};
pub use wire::{read_frame, submit, write_frame, Message};
pub use worker::{
    run_worker, AddrSource, CatalogFactory, RunnerFactory, WorkerConfig, WorkerSummary,
};

use std::error::Error;
use std::fmt;

/// Errors produced by the campaign service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A socket or file failure.
    Io(std::io::Error),
    /// A malformed or out-of-protocol frame from a peer.
    Protocol(String),
    /// A failure in the underlying experiment layer (store, runner,
    /// catalog).
    Exp(mc_exp::ExpError),
    /// The coordinator refused a submission or a connection.
    Rejected(String),
    /// A malformed request (bad address, zero workers, …).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Exp(e) => write!(f, "{e}"),
            ServeError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ServeError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Exp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<mc_exp::ExpError> for ServeError {
    fn from(e: mc_exp::ExpError) -> Self {
        ServeError::Exp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        assert!(ServeError::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
        assert!(ServeError::Rejected("busy".into())
            .to_string()
            .contains("rejected: busy"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
