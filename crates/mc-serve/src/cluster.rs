//! The in-process "local cluster" harness: one coordinator and N worker
//! threads over loopback TCP, with process deaths injected from a
//! seed-derived [`mc_fault::ClusterPlan`].
//!
//! This is how `cargo test` asserts the service's contract without
//! subprocess orchestration: the coordinator checkpoints to a
//! [`mc_fault::SimDisk`] (so a coordinator "crash" has real
//! crash-semantics — the disk is rolled back to its durable prefix and
//! the next generation resumes from it), workers die by slamming their
//! sockets mid-stream, and the harness restarts a killed coordinator on
//! a fresh port that surviving workers discover through a shared address
//! cell — the in-process analogue of the CLI's `--addr-file`.

use crate::coordinator::{Coordinator, CoordinatorConfig, ServeOutcome};
use crate::wire;
use crate::worker::{run_worker, AddrSource, RunnerFactory, WorkerConfig, WorkerSummary};
use crate::ServeError;
use mc_exp::{CampaignSpec, Store};
use mc_fault::{ClusterPlan, SimDisk, StoreIo};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Local cluster configuration.
#[derive(Debug, Clone)]
pub struct LocalClusterConfig {
    /// Worker threads to spawn.
    pub workers: usize,
    /// Thread budget per worker.
    pub threads_per_worker: usize,
    /// Leases (stripes) the campaign is split into.
    pub leases: usize,
    /// Coordinator heartbeat timeout (workers beat at a third of it).
    pub heartbeat_timeout: Duration,
    /// The death plan (see [`mc_fault::cluster_plan`]).
    pub plan: ClusterPlan,
    /// Inject a durable torn tail into the checkpoint before the resumed
    /// coordinator opens it — exercises the store's torn-tail recovery on
    /// the resume path.
    pub torn_tail_on_resume: bool,
}

impl Default for LocalClusterConfig {
    fn default() -> Self {
        LocalClusterConfig {
            workers: 3,
            threads_per_worker: 1,
            leases: 4,
            heartbeat_timeout: Duration::from_millis(400),
            plan: ClusterPlan::calm(3),
            torn_tail_on_resume: false,
        }
    }
}

/// What a local cluster run did.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Canonical text of the final checkpoint store — compare against a
    /// serial run's [`Store::canonical_lines`] for byte identity.
    pub canonical: String,
    /// Per-generation coordinator outcomes (one entry unless the plan
    /// killed the coordinator).
    pub outcomes: Vec<ServeOutcome>,
    /// Coordinator restarts (0 or 1).
    pub restarts: usize,
    /// Per-worker summaries, in spawn order.
    pub workers: Vec<WorkerSummary>,
}

impl ClusterReport {
    /// The final generation's outcome.
    #[must_use]
    pub fn final_outcome(&self) -> &ServeOutcome {
        self.outcomes.last().expect("at least one generation")
    }

    /// Leases reclaimed across all generations.
    #[must_use]
    pub fn reclaims(&self) -> u64 {
        self.outcomes.iter().map(|o| o.reclaims).sum()
    }

    /// Duplicate redeliveries absorbed across all generations.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.outcomes.iter().map(|o| o.duplicates).sum()
    }
}

fn bind_generation(
    disk: &SimDisk,
    cfg: &LocalClusterConfig,
    die_after_records: Option<u64>,
) -> Result<Coordinator, ServeError> {
    let disk = disk.clone();
    Coordinator::bind(
        CoordinatorConfig {
            listen: "127.0.0.1:0".into(),
            leases: cfg.leases,
            heartbeat_timeout: cfg.heartbeat_timeout,
            die_after_records,
        },
        Box::new(move |spec: &CampaignSpec| {
            Store::create_or_resume_io(Box::new(disk.open()), "sim://checkpoint", spec)
        }),
    )
}

/// Appends durable garbage (no trailing newline) to the checkpoint, so
/// the resumed store sees a torn last line and must truncate it.
fn inject_torn_tail(disk: &SimDisk) {
    let mut f = disk.open();
    let mut existing = Vec::new();
    let _ = f.read_to_end(&mut existing);
    let _ = f.write_all(b"{\"unit\":9999,\"poi");
    let _ = f.sync_data();
}

/// Runs a campaign on an in-process loopback cluster and returns the
/// merged result plus what happened along the way. The spec is submitted
/// over the wire (the same path external clients use), workers execute
/// leases through `factory`, and the plan's deaths are injected
/// mid-stream.
///
/// # Errors
///
/// Configuration mismatches, coordinator store failures, worker retry
/// exhaustion, or a submission that was rejected.
pub fn run_local_cluster(
    spec: &CampaignSpec,
    factory: &(dyn RunnerFactory + Sync),
    cfg: &LocalClusterConfig,
) -> Result<ClusterReport, ServeError> {
    if cfg.workers == 0 {
        return Err(ServeError::Config(
            "a cluster needs at least one worker".into(),
        ));
    }
    if cfg.plan.worker_kill_after.len() != cfg.workers {
        return Err(ServeError::Config(format!(
            "plan covers {} workers but the cluster has {}",
            cfg.plan.worker_kill_after.len(),
            cfg.workers
        )));
    }
    let disk = SimDisk::new();
    let cell = Arc::new(Mutex::new(String::new()));

    std::thread::scope(|s| {
        let coordinator = bind_generation(&disk, cfg, cfg.plan.coordinator_kill_after)?;
        *cell.lock().expect("address cell poisoned") = coordinator.local_addr().to_string();

        let worker_handles: Vec<_> = (0..cfg.workers)
            .map(|i| {
                let addr = AddrSource::Shared(Arc::clone(&cell));
                let wcfg = WorkerConfig {
                    name: format!("w{i}"),
                    threads: cfg.threads_per_worker,
                    heartbeat: (cfg.heartbeat_timeout / 3).max(Duration::from_millis(5)),
                    retry: Duration::from_secs(10),
                    retry_interval: Duration::from_millis(10),
                    throttle: Duration::ZERO,
                    die_after_records: cfg.plan.worker_kill_after[i],
                };
                s.spawn(move || run_worker(&addr, &wcfg, factory))
            })
            .collect();

        let submit = |addr: String| s.spawn(move || wire::submit(&addr, spec));
        let submit1 = submit(coordinator.local_addr().to_string());

        let mut outcomes = Vec::new();
        let mut restarts = 0;
        let run1 = coordinator.run();
        let (canonical, last) = match run1 {
            Err(e) => {
                // Fail fast: blank the address so workers stop retrying.
                cell.lock().expect("address cell poisoned").clear();
                drain(worker_handles);
                return Err(e);
            }
            Ok(outcome) if outcome.killed => {
                outcomes.push(outcome);
                restarts = 1;
                // The first generation's listener and store handle must be
                // gone before the crash is simulated on the disk.
                drop(coordinator);
                if cfg.torn_tail_on_resume {
                    inject_torn_tail(&disk);
                }
                disk.recover();
                let resumed = bind_generation(&disk, cfg, None)?;
                *cell.lock().expect("address cell poisoned") = resumed.local_addr().to_string();
                let submit2 = submit(resumed.local_addr().to_string());
                let outcome = match resumed.run() {
                    Ok(o) => o,
                    Err(e) => {
                        cell.lock().expect("address cell poisoned").clear();
                        drain(worker_handles);
                        return Err(e);
                    }
                };
                let canonical = resumed.canonical_lines();
                // Withdraw the address and close the listener so workers
                // still mid-reconnect exit cleanly instead of retrying
                // against a finished cluster.
                cell.lock().expect("address cell poisoned").clear();
                drop(resumed);
                check_submit(submit2)?;
                (canonical, outcome)
            }
            Ok(outcome) => {
                let canonical = coordinator.canonical_lines();
                cell.lock().expect("address cell poisoned").clear();
                drop(coordinator);
                (canonical, outcome)
            }
        };
        outcomes.push(last);
        check_submit(submit1)?;

        let mut workers = Vec::new();
        for handle in worker_handles {
            workers.push(handle.join().expect("worker thread panicked")?);
        }
        Ok(ClusterReport {
            canonical: canonical
                .ok_or_else(|| ServeError::Config("no campaign was ever activated".into()))?,
            outcomes,
            restarts,
            workers,
        })
    })
}

type SubmitHandle<'a> =
    std::thread::ScopedJoinHandle<'a, Result<(String, usize, usize), ServeError>>;

fn check_submit(handle: SubmitHandle<'_>) -> Result<(), ServeError> {
    handle.join().expect("submitter thread panicked")?;
    Ok(())
}

fn drain<T>(handles: Vec<std::thread::ScopedJoinHandle<'_, T>>) {
    for handle in handles {
        let _ = handle.join();
    }
}
