//! The worker loop: connect (with retry), execute assigned leases over an
//! [`mc_par::WorkerPool`], stream records back in unit order, survive
//! coordinator restarts by reconnecting.
//!
//! A worker is stateless between sessions: every `Assign` carries the
//! full spec (the runner is rebuilt from it) and the lease's
//! already-complete units, so a worker that reconnects — to the same
//! coordinator or a restarted one — needs no local history. The only
//! state that spans reconnects is the retry budget and the
//! simulated-death record counter.

use crate::wire::{read_frame, write_frame, Message};
use crate::ServeError;
use mc_exp::run::Shard;
use mc_exp::spec::WorkUnit;
use mc_exp::store::UnitRecord;
use mc_exp::{CampaignSpec, ExpError, UnitRunner};
use std::collections::{BTreeMap, BTreeSet};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds the unit runner for a spec received in an `Assign`. The CLI
/// uses [`CatalogFactory`] (specs must name catalog campaigns); tests
/// hand in seed-pure closures.
pub trait RunnerFactory: Sync {
    /// Builds a runner that will compute this spec's units.
    ///
    /// # Errors
    ///
    /// Specs this factory cannot reconstruct a runner for.
    fn runner_for(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Box<dyn UnitRunner + Send + Sync>, ExpError>;
}

/// The production factory: rebuilds catalog campaigns via
/// [`mc_exp::catalog::rebuild`], which verifies the received spec is
/// fingerprint-identical to what the catalog produces.
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogFactory;

impl RunnerFactory for CatalogFactory {
    fn runner_for(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Box<dyn UnitRunner + Send + Sync>, ExpError> {
        Ok(mc_exp::catalog::rebuild(spec)?.runner)
    }
}

/// Where the coordinator lives. `File` re-reads the path on every
/// connection attempt, so a restarted coordinator on a new port is found
/// by rewriting one file; `Shared` is the in-process equivalent for the
/// cluster harness.
///
/// A source that resolves to *nothing* (missing/empty file, blank cell)
/// means the address has been withdrawn: the worker exits cleanly rather
/// than burning its retry budget — emptying the address file is how an
/// operator decommissions a worker fleet.
#[derive(Debug, Clone)]
pub enum AddrSource {
    /// A fixed `host:port`.
    Fixed(String),
    /// A file whose (trimmed) contents are the current `host:port`.
    File(PathBuf),
    /// A shared cell the test harness updates across coordinator
    /// generations.
    Shared(Arc<Mutex<String>>),
}

impl AddrSource {
    /// The current address, if resolvable.
    #[must_use]
    pub fn current(&self) -> Option<String> {
        match self {
            AddrSource::Fixed(addr) => Some(addr.clone()),
            AddrSource::File(path) => {
                let text = std::fs::read_to_string(path).ok()?;
                let addr = text.trim();
                (!addr.is_empty()).then(|| addr.to_string())
            }
            AddrSource::Shared(cell) => {
                let addr = cell.lock().expect("address cell poisoned").clone();
                (!addr.is_empty()).then_some(addr)
            }
        }
    }
}

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name sent in `Hello`.
    pub name: String,
    /// Thread budget for lease execution (0 = all cores), split between
    /// unit fan-out and per-unit inner parallelism by
    /// [`mc_par::ThreadBudget`].
    pub threads: usize,
    /// Heartbeat send interval.
    pub heartbeat: Duration,
    /// Total budget of consecutive failed connection attempts before the
    /// worker gives up (spans coordinator restarts).
    pub retry: Duration,
    /// Pause between connection attempts.
    pub retry_interval: Duration,
    /// Per-unit pacing delay — stretches tiny campaigns so CI can kill
    /// processes mid-run. Zero in production.
    pub throttle: Duration,
    /// Test knob: slam the connection shut (the in-process stand-in for
    /// SIGKILL) after streaming this many records, counted across
    /// sessions. `None` in production.
    pub die_after_records: Option<u64>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".into(),
            threads: 1,
            heartbeat: Duration::from_millis(500),
            retry: Duration::from_secs(5),
            retry_interval: Duration::from_millis(50),
            throttle: Duration::ZERO,
            die_after_records: None,
        }
    }
}

/// What one worker did before exiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSummary {
    /// Leases fully streamed (`LeaseDone` sent).
    pub leases: u64,
    /// Records streamed to a coordinator.
    pub records: u64,
    /// Sessions re-established after a lost connection.
    pub reconnects: u64,
    /// Whether the simulated-death knob fired.
    pub died: bool,
}

enum SessionEnd {
    /// Coordinator said `Shutdown`: the campaign is complete.
    Shutdown,
    /// The connection died; reconnect and continue.
    Disconnected,
    /// The simulated-death knob fired.
    Died,
}

/// Runs a worker until the coordinator shuts it down, the address is
/// withdrawn, the retry budget runs out, or the simulated-death knob
/// fires.
///
/// # Errors
///
/// Exhausted connection retries, unreconstructable specs, or a failing
/// unit runner. Lost connections are not errors — the worker reconnects.
pub fn run_worker(
    addr: &AddrSource,
    cfg: &WorkerConfig,
    factory: &dyn RunnerFactory,
) -> Result<WorkerSummary, ServeError> {
    let mut summary = WorkerSummary::default();
    let mut sent_total: u64 = 0;
    let mut first = true;
    loop {
        let Some(stream) = connect_with_retry(addr, cfg)? else {
            // Withdrawn address: the cluster is over and no coordinator
            // is coming back. Not an error.
            return Ok(summary);
        };
        if !first {
            summary.reconnects += 1;
        }
        first = false;
        match session(stream, cfg, factory, &mut summary, &mut sent_total)? {
            SessionEnd::Shutdown => return Ok(summary),
            SessionEnd::Died => {
                summary.died = true;
                return Ok(summary);
            }
            SessionEnd::Disconnected => {}
        }
    }
}

/// Connects to the coordinator, retrying for the configured budget —
/// which is what lets workers outlive a coordinator restart. `Ok(None)`
/// means the address was withdrawn (see [`AddrSource`]).
fn connect_with_retry(
    addr: &AddrSource,
    cfg: &WorkerConfig,
) -> Result<Option<TcpStream>, ServeError> {
    let deadline = Instant::now() + cfg.retry;
    loop {
        let Some(target) = addr.current() else {
            return Ok(None);
        };
        if let Ok(stream) = TcpStream::connect(&target) {
            let _ = stream.set_nodelay(true);
            return Ok(Some(stream));
        }
        if Instant::now() >= deadline {
            return Err(ServeError::Config(format!(
                "could not reach a coordinator within {:?}",
                cfg.retry
            )));
        }
        std::thread::sleep(cfg.retry_interval);
    }
}

/// One connected session: register, heartbeat, execute assignments.
fn session(
    stream: TcpStream,
    cfg: &WorkerConfig,
    factory: &dyn RunnerFactory,
    summary: &mut WorkerSummary,
    sent_total: &mut u64,
) -> Result<SessionEnd, ServeError> {
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    let alive = Arc::new(AtomicBool::new(true));

    let hb_writer = Arc::clone(&writer);
    let hb_alive = Arc::clone(&alive);
    let hb_interval = cfg.heartbeat;
    let heartbeat = std::thread::spawn(move || {
        let step = (hb_interval / 4).max(Duration::from_millis(5));
        let mut since_beat = Duration::ZERO;
        while hb_alive.load(Ordering::SeqCst) {
            std::thread::sleep(step);
            since_beat += step;
            if since_beat < hb_interval {
                continue;
            }
            since_beat = Duration::ZERO;
            let mut w = hb_writer.lock().expect("writer poisoned");
            if write_frame(&mut *w, &Message::Heartbeat).is_err() {
                break;
            }
        }
    });

    let end = session_inner(&mut reader, &writer, cfg, factory, summary, sent_total);

    alive.store(false, Ordering::SeqCst);
    {
        let w = writer.lock().expect("writer poisoned");
        let _ = w.shutdown(Shutdown::Both);
    }
    let _ = heartbeat.join();
    end
}

fn session_inner(
    reader: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    cfg: &WorkerConfig,
    factory: &dyn RunnerFactory,
    summary: &mut WorkerSummary,
    sent_total: &mut u64,
) -> Result<SessionEnd, ServeError> {
    {
        let mut w = writer.lock().expect("writer poisoned");
        if write_frame(
            &mut *w,
            &Message::Hello {
                worker: cfg.name.clone(),
                threads: cfg.threads,
            },
        )
        .is_err()
        {
            return Ok(SessionEnd::Disconnected);
        }
    }
    loop {
        match read_frame(reader) {
            Ok(Some(Message::Welcome { .. } | Message::Heartbeat)) => {}
            Ok(Some(Message::Shutdown)) => return Ok(SessionEnd::Shutdown),
            Ok(Some(Message::Assign {
                lease,
                spec,
                shard_index,
                shard_count,
                done,
            })) => {
                let _lease_span = mc_obs::span("serve.lease");
                match run_lease(
                    lease,
                    &spec,
                    Shard {
                        index: shard_index,
                        count: shard_count,
                    },
                    &done.into_iter().collect(),
                    writer,
                    cfg,
                    factory,
                    summary,
                    sent_total,
                )? {
                    LeaseEnd::Streamed => summary.leases += 1,
                    LeaseEnd::Disconnected => return Ok(SessionEnd::Disconnected),
                    LeaseEnd::Died => return Ok(SessionEnd::Died),
                }
            }
            Ok(Some(_)) => {} // out-of-protocol chatter: ignore
            Ok(None) | Err(ServeError::Io(_) | ServeError::Protocol(_)) => {
                return Ok(SessionEnd::Disconnected)
            }
            Err(e) => return Err(e),
        }
    }
}

enum LeaseEnd {
    /// Every pending unit streamed and `LeaseDone` sent.
    Streamed,
    /// The connection died mid-lease.
    Disconnected,
    /// The simulated-death knob fired mid-lease.
    Died,
}

/// Shared streaming state: records flush to the coordinator in unit
/// order (out-of-order completions park, exactly like the runner's store
/// sink), which makes the simulated-death prefix deterministic.
struct StreamSink<'a> {
    writer: &'a Mutex<TcpStream>,
    lease: u64,
    next: usize,
    parked: BTreeMap<usize, UnitRecord>,
    sent: u64,
    die_after: Option<u64>,
    sent_total: u64,
    end: Option<LeaseEnd>,
}

impl StreamSink<'_> {
    /// Accepts the `pos`-th pending unit's record; flushes everything now
    /// in order. `false` stops the pool.
    fn complete(&mut self, pos: usize, record: UnitRecord) -> bool {
        self.parked.insert(pos, record);
        while let Some(record) = self.parked.remove(&self.next) {
            if let Some(limit) = self.die_after {
                if self.sent_total >= limit {
                    // Simulated SIGKILL: no goodbye, no flush — slam the
                    // socket mid-protocol.
                    let w = self.writer.lock().expect("writer poisoned");
                    let _ = w.shutdown(Shutdown::Both);
                    self.end = Some(LeaseEnd::Died);
                    return false;
                }
            }
            let mut w = self.writer.lock().expect("writer poisoned");
            if write_frame(
                &mut *w,
                &Message::Record {
                    lease: self.lease,
                    record,
                },
            )
            .is_err()
            {
                self.end = Some(LeaseEnd::Disconnected);
                return false;
            }
            drop(w);
            mc_obs::counter("serve.sent", 1);
            self.sent += 1;
            self.sent_total += 1;
            self.next += 1;
        }
        true
    }
}

#[allow(clippy::too_many_arguments)]
fn run_lease(
    lease: u64,
    spec: &CampaignSpec,
    shard: Shard,
    done: &BTreeSet<usize>,
    writer: &Arc<Mutex<TcpStream>>,
    cfg: &WorkerConfig,
    factory: &dyn RunnerFactory,
    summary: &mut WorkerSummary,
    sent_total: &mut u64,
) -> Result<LeaseEnd, ServeError> {
    let runner = factory.runner_for(spec)?;
    let total = spec.total_units();
    let pending: Vec<WorkUnit> = (0..total)
        .filter(|&u| shard.owns(u) && !done.contains(&u))
        .map(|u| spec.unit(u))
        .collect();

    let (outer, inner) = mc_par::ThreadBudget::explicit(cfg.threads).split(pending.len());
    let inner_threads = inner.get();
    let pool = mc_par::WorkerPool::new(outer);

    let sink = Mutex::new(StreamSink {
        writer,
        lease,
        next: 0,
        parked: BTreeMap::new(),
        sent: 0,
        die_after: cfg.die_after_records,
        sent_total: *sent_total,
        end: None,
    });
    let error: Mutex<Option<ExpError>> = Mutex::new(None);

    pool.for_each_while(pending.len(), |pos| {
        let unit = pending[pos];
        let _unit_span = mc_obs::span("serve.unit");
        match runner.run_unit(&unit, inner_threads) {
            Ok(metrics) => {
                if !cfg.throttle.is_zero() {
                    std::thread::sleep(cfg.throttle);
                }
                let record = UnitRecord {
                    unit: unit.index,
                    point: unit.point,
                    replica: unit.replica,
                    seed: unit.seed,
                    metrics,
                };
                sink.lock().expect("sink poisoned").complete(pos, record)
            }
            Err(e) => {
                *error.lock().expect("error poisoned") = Some(e);
                false
            }
        }
    });

    if let Some(e) = error.into_inner().expect("error poisoned") {
        return Err(ServeError::Exp(e));
    }
    let sink = sink.into_inner().expect("sink poisoned");
    summary.records += sink.sent;
    *sent_total = sink.sent_total;
    if let Some(end) = sink.end {
        return Ok(end);
    }
    let mut w = writer.lock().expect("writer poisoned");
    if write_frame(&mut *w, &Message::LeaseDone { lease }).is_err() {
        return Ok(LeaseEnd::Disconnected);
    }
    Ok(LeaseEnd::Streamed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_sources_resolve() {
        assert_eq!(
            AddrSource::Fixed("127.0.0.1:9".into()).current(),
            Some("127.0.0.1:9".into())
        );
        let cell = Arc::new(Mutex::new(String::new()));
        let shared = AddrSource::Shared(Arc::clone(&cell));
        assert_eq!(shared.current(), None, "empty cell is unresolvable");
        *cell.lock().unwrap() = "127.0.0.1:7".into();
        assert_eq!(shared.current(), Some("127.0.0.1:7".into()));

        let dir = std::env::temp_dir().join("mc-serve-worker-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("addr-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(AddrSource::File(path.clone()).current(), None);
        std::fs::write(&path, "127.0.0.1:5\n").unwrap();
        assert_eq!(
            AddrSource::File(path.clone()).current(),
            Some("127.0.0.1:5".into())
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exhausted_retries_are_an_error_but_withdrawal_is_clean() {
        let cfg = WorkerConfig {
            retry: Duration::from_millis(30),
            retry_interval: Duration::from_millis(10),
            ..WorkerConfig::default()
        };
        // A refusing port burns the budget: bind then immediately drop a
        // listener so nothing is listening there.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let addr = AddrSource::Fixed(format!("127.0.0.1:{port}"));
        let err = connect_with_retry(&addr, &cfg).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)), "{err}");

        // A withdrawn address is a clean `None`, not an error.
        let addr = AddrSource::Shared(Arc::new(Mutex::new(String::new())));
        assert!(connect_with_retry(&addr, &cfg).unwrap().is_none());
    }
}
