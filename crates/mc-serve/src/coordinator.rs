//! The coordinator: a std-only TCP service that owns one campaign at a
//! time, fans its leases out to workers, and checkpoints every accepted
//! record through the crash-safe mc-exp store.
//!
//! Concurrency shape: one accept loop ([`Coordinator::run`]), one reader
//! thread per connection, one sweeper thread for heartbeat timeouts. All
//! shared state — the worker registry, the lease table, the checkpoint
//! store — lives in a single `Mutex<Hub>`; every protocol event takes the
//! lock, mutates, and releases. Frames are small and loopback/LAN-sized,
//! so writing to a worker under the lock is cheap and keeps the state
//! machine single-threaded in effect (which is what makes the failover
//! tests deterministic).
//!
//! Liveness is wall-clock by necessity (heartbeat timeouts cannot be
//! seed-derived); everything else — which units exist, what a lease owns,
//! when the campaign is complete — is decided against the store, never
//! against timing.

use crate::lease::LeaseTable;
use crate::wire::{read_frame, write_frame, Message};
use crate::ServeError;
use mc_exp::accounting::one_shard_progress;
use mc_exp::run::Shard;
use mc_exp::store::ResumeInfo;
use mc_exp::{CampaignSpec, ExpError, Store, UnitRecord};
use std::collections::BTreeMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Opens (or resumes) the checkpoint store for an accepted campaign. The
/// CLI maps specs to files; the in-process cluster harness hands out
/// simulated disks.
pub type StoreOpener =
    Box<dyn FnMut(&CampaignSpec) -> Result<(Store, ResumeInfo), ExpError> + Send>;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Listen address (`127.0.0.1:0` binds an ephemeral port).
    pub listen: String,
    /// Leases (stripes) per campaign; clamped to the unit count.
    pub leases: usize,
    /// A worker silent for longer than this has its lease reclaimed.
    pub heartbeat_timeout: Duration,
    /// Test knob: simulate a coordinator crash (close every socket, stop
    /// accepting, return from `run`) after accepting this many new
    /// records. `None` in production.
    pub die_after_records: Option<u64>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            listen: "127.0.0.1:0".into(),
            leases: 4,
            heartbeat_timeout: Duration::from_secs(5),
            die_after_records: None,
        }
    }
}

/// What one [`Coordinator::run`] session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Whether the campaign completed (every unit in the store).
    pub completed: bool,
    /// Whether the session ended via the simulated-crash knob.
    pub killed: bool,
    /// New records accepted this session.
    pub records: u64,
    /// Benign duplicate redeliveries skipped this session.
    pub duplicates: u64,
    /// Leases reclaimed from dead or silent workers.
    pub reclaims: u64,
    /// Total units of the campaign (0 if none was ever activated).
    pub total_units: usize,
    /// Units complete in the store when the session ended.
    pub completed_units: usize,
}

struct WorkerHandle {
    stream: TcpStream,
    last_seen: Instant,
    lease: Option<usize>,
}

struct Active {
    spec: CampaignSpec,
    store: Store,
    leases: LeaseTable,
}

struct Hub {
    opener: StoreOpener,
    workers: BTreeMap<u64, WorkerHandle>,
    next_worker_id: u64,
    campaign: Option<Active>,
    records: u64,
    duplicates: u64,
    reclaims: u64,
    completed: bool,
    killed: bool,
    error: Option<ServeError>,
}

struct Inner {
    cfg: CoordinatorConfig,
    addr: SocketAddr,
    hub: Mutex<Hub>,
    /// Once set, the accept loop, readers, and sweeper all wind down.
    stopping: AtomicBool,
}

/// The campaign coordinator. Bind, optionally preload a campaign, then
/// [`Coordinator::run`] until completion or simulated crash.
pub struct Coordinator {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Coordinator {
    /// Binds the listen socket. No connections are accepted until
    /// [`Coordinator::run`].
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(cfg: CoordinatorConfig, opener: StoreOpener) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            cfg,
            addr,
            hub: Mutex::new(Hub {
                opener,
                workers: BTreeMap::new(),
                next_worker_id: 0,
                campaign: None,
                records: 0,
                duplicates: 0,
                reclaims: 0,
                completed: false,
                killed: false,
                error: None,
            }),
            stopping: AtomicBool::new(false),
        });
        Ok(Coordinator { listener, inner })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Activates a campaign locally (the CLI path; remote clients use
    /// [`crate::wire::submit`]). Returns `(total_units, already_complete)`.
    ///
    /// # Errors
    ///
    /// Store failures, or a different campaign already active.
    pub fn preload(&self, spec: &CampaignSpec) -> Result<(usize, usize), ServeError> {
        let mut hub = self.inner.lock_hub();
        let accepted = hub.activate(spec, &self.inner.cfg)?;
        hub.assign_idle();
        if hub.campaign_complete() {
            hub.finish();
            self.inner.stopping.store(true, Ordering::SeqCst);
        }
        Ok(accepted)
    }

    /// Serves until the campaign completes, the crash knob fires, or a
    /// store error makes continuing unsound.
    ///
    /// # Errors
    ///
    /// Fatal store errors (conflicting records, checkpoint I/O failures).
    /// Worker churn is not an error — that is the point of the service.
    pub fn run(&self) -> Result<ServeOutcome, ServeError> {
        let inner = Arc::clone(&self.inner);
        let sweeper = std::thread::spawn(move || inner.sweep_loop());
        // Check `stopping` before each accept: a preloaded, already-
        // complete campaign must return without waiting for a connection.
        while !self.inner.stopping.load(Ordering::SeqCst) {
            let Ok((stream, _peer)) = self.listener.accept() else {
                continue;
            };
            if self.inner.stopping.load(Ordering::SeqCst) {
                break;
            }
            let _ = stream.set_nodelay(true);
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || inner.serve_conn(stream));
        }
        self.inner.stopping.store(true, Ordering::SeqCst);
        let _ = sweeper.join();
        let mut hub = self.inner.lock_hub();
        // A clean completion leaves no sockets behind; a crash already
        // slammed them shut.
        let outcome = ServeOutcome {
            completed: hub.completed,
            killed: hub.killed,
            records: hub.records,
            duplicates: hub.duplicates,
            reclaims: hub.reclaims,
            total_units: hub.campaign.as_ref().map_or(0, |a| a.spec.total_units()),
            completed_units: hub
                .campaign
                .as_ref()
                .map_or(0, |a| a.store.completed_count()),
        };
        match hub.error.take() {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// The canonical text of the checkpoint store (header + records
    /// sorted by unit) — the merged result once the outcome says
    /// `completed`.
    #[must_use]
    pub fn canonical_lines(&self) -> Option<String> {
        let hub = self.inner.lock_hub();
        hub.campaign.as_ref().map(|a| a.store.canonical_lines())
    }
}

impl Inner {
    fn lock_hub(&self) -> std::sync::MutexGuard<'_, Hub> {
        self.hub.lock().expect("coordinator hub poisoned")
    }

    /// Wakes the accept loop so it observes `stopping`.
    fn poke(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.poke();
    }

    /// The heartbeat sweeper: reclaims leases of workers that went
    /// silent without their connection dying (a hung process, a dropped
    /// network — the failure EOF detection cannot see).
    fn sweep_loop(&self) {
        let interval = (self.cfg.heartbeat_timeout / 4).max(Duration::from_millis(5));
        while !self.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(interval);
            let mut hub = self.lock_hub();
            let timeout = self.cfg.heartbeat_timeout;
            let silent: Vec<u64> = hub
                .workers
                .iter()
                .filter(|(_, w)| w.last_seen.elapsed() > timeout)
                .map(|(id, _)| *id)
                .collect();
            for id in silent {
                hub.drop_worker(id, "heartbeat timeout");
            }
        }
    }

    /// One connection's read loop. A connection is anonymous until its
    /// `Hello` (submissions never register); after that, its death —
    /// clean EOF, reset, or protocol garbage — drops the worker and
    /// reclaims its lease.
    fn serve_conn(&self, stream: TcpStream) {
        let Ok(mut reader) = stream.try_clone() else {
            return;
        };
        let mut worker_id: Option<u64> = None;
        while let Ok(Some(msg)) = read_frame(&mut reader) {
            if !self.handle(msg, &mut worker_id, &stream) {
                break;
            }
        }
        if let Some(id) = worker_id {
            self.lock_hub().drop_worker(id, "connection closed");
        }
    }

    /// Dispatches one frame. Returns `false` to close the connection.
    fn handle(&self, msg: Message, worker_id: &mut Option<u64>, reply: &TcpStream) -> bool {
        let mut hub = self.lock_hub();
        if self.stopping.load(Ordering::SeqCst) {
            return false;
        }
        match msg {
            Message::Hello { .. } => {
                let Ok(writer) = reply.try_clone() else {
                    return false;
                };
                let id = hub.next_worker_id;
                hub.next_worker_id += 1;
                hub.workers.insert(
                    id,
                    WorkerHandle {
                        stream: writer,
                        last_seen: Instant::now(),
                        lease: None,
                    },
                );
                *worker_id = Some(id);
                let ok = hub.send_to(id, &Message::Welcome { worker_id: id });
                if ok {
                    hub.try_assign(id);
                }
                ok
            }
            Message::Heartbeat => {
                mc_obs::counter("serve.heartbeats", 1);
                if let Some(id) = *worker_id {
                    if let Some(w) = hub.workers.get_mut(&id) {
                        w.last_seen = Instant::now();
                    }
                }
                true
            }
            Message::Submit { spec } => {
                let response = match hub.activate(&spec, &self.cfg) {
                    Ok((total_units, completed)) => Message::Accepted {
                        fingerprint: spec.fingerprint(),
                        total_units,
                        completed,
                    },
                    Err(e) => Message::Rejected {
                        reason: e.to_string(),
                    },
                };
                let mut writer = reply;
                let _ = write_frame(&mut writer, &response);
                hub.assign_idle();
                if hub.campaign_complete() {
                    hub.finish();
                    drop(hub);
                    self.stop();
                    return false;
                }
                true
            }
            Message::Record { lease, record } => {
                let Some(id) = *worker_id else { return false };
                if let Some(w) = hub.workers.get_mut(&id) {
                    w.last_seen = Instant::now();
                }
                match hub.accept_record(lease, record) {
                    Ok(()) => {}
                    Err(e) => {
                        // A conflicting or unappendable record poisons the
                        // campaign: stop serving rather than commit a store
                        // two workers disagree about.
                        hub.error = Some(e);
                        hub.slam_connections();
                        drop(hub);
                        self.stop();
                        return false;
                    }
                }
                if let Some(limit) = self.cfg.die_after_records {
                    if hub.records >= limit {
                        // Simulated SIGKILL: no goodbyes, no flushing —
                        // every socket is slammed shut and `run` returns
                        // with `killed`.
                        hub.killed = true;
                        hub.slam_connections();
                        drop(hub);
                        self.stop();
                        return false;
                    }
                }
                if hub.campaign_complete() {
                    hub.finish();
                    drop(hub);
                    self.stop();
                    return false;
                }
                true
            }
            Message::LeaseDone { lease } => {
                let Some(id) = *worker_id else { return false };
                hub.lease_done(id, lease as usize);
                if hub.campaign_complete() {
                    hub.finish();
                    drop(hub);
                    self.stop();
                    return false;
                }
                true
            }
            // Only workers send the remaining variants; a peer that sends
            // coordinator-side messages is out of protocol.
            Message::Welcome { .. }
            | Message::Accepted { .. }
            | Message::Rejected { .. }
            | Message::Assign { .. }
            | Message::Shutdown => false,
        }
    }
}

impl Hub {
    /// Accepts `spec` as the active campaign (idempotent for the same
    /// fingerprint — resubmission after a coordinator restart is the
    /// resume path). Returns `(total_units, already_complete)`.
    fn activate(
        &mut self,
        spec: &CampaignSpec,
        cfg: &CoordinatorConfig,
    ) -> Result<(usize, usize), ServeError> {
        if let Some(active) = &self.campaign {
            return if active.spec == *spec {
                Ok((spec.total_units(), active.store.completed_count()))
            } else {
                Err(ServeError::Rejected(format!(
                    "campaign {} is already active",
                    active.spec.name
                )))
            };
        }
        let (store, _info) = (self.opener)(spec)?;
        if store.spec() != spec {
            return Err(ServeError::Rejected(
                "checkpoint store belongs to a different campaign".into(),
            ));
        }
        let total = spec.total_units();
        let mut leases = LeaseTable::new(cfg.leases.clamp(1, total.max(1)));
        for lease in 0..leases.count() {
            let shard = Shard {
                index: lease,
                count: leases.count(),
            };
            if one_shard_progress(total, shard, |u| store.is_complete(u)).is_complete() {
                leases.complete(lease);
            }
        }
        let completed = store.completed_count();
        self.campaign = Some(Active {
            spec: spec.clone(),
            store,
            leases,
        });
        Ok((total, completed))
    }

    /// Appends a worker's record to the checkpoint, tolerating benign
    /// redelivery.
    fn accept_record(&mut self, _lease: u64, record: UnitRecord) -> Result<(), ServeError> {
        let Some(active) = self.campaign.as_mut() else {
            // A record for a campaign this (restarted) coordinator never
            // activated: drop it; the worker will be reassigned.
            return Ok(());
        };
        if active.store.append_dedup(record)? {
            self.records += 1;
            mc_obs::counter("serve.records", 1);
        } else {
            self.duplicates += 1;
            mc_obs::counter("serve.duplicates", 1);
        }
        Ok(())
    }

    /// Handles a worker's claim that its lease is finished. The store is
    /// the judge: an incomplete claim reclaims the lease instead.
    fn lease_done(&mut self, worker: u64, lease: usize) {
        let Some(active) = self.campaign.as_mut() else {
            return;
        };
        if lease >= active.leases.count() || active.leases.holder(lease) != Some(worker) {
            return; // stale claim from a reclaimed lease
        }
        let shard = Shard {
            index: lease,
            count: active.leases.count(),
        };
        let total = active.spec.total_units();
        let store = &active.store;
        if one_shard_progress(total, shard, |u| store.is_complete(u)).is_complete() {
            active.leases.complete(lease);
        } else {
            active.leases.reclaim(lease);
        }
        if let Some(w) = self.workers.get_mut(&worker) {
            w.last_seen = Instant::now();
            w.lease = None;
        }
        self.assign_idle();
    }

    /// Whether the active campaign has every unit in the store.
    fn campaign_complete(&self) -> bool {
        self.campaign
            .as_ref()
            .is_some_and(|a| a.store.completed_count() == a.spec.total_units())
    }

    /// Completion: mark every lease done, tell every worker to exit, and
    /// flag the session complete.
    fn finish(&mut self) {
        let _merge_span = mc_obs::span("serve.merge");
        if let Some(active) = self.campaign.as_mut() {
            for lease in 0..active.leases.count() {
                active.leases.complete(lease);
            }
        }
        self.completed = true;
        let ids: Vec<u64> = self.workers.keys().copied().collect();
        for id in ids {
            // Send the goodbye but do NOT slam the socket: a worker may
            // still be flushing its final `LeaseDone`, and TCP delivers
            // the buffered `Shutdown` before the eventual EOF either way.
            let _ = self.send_to(id, &Message::Shutdown);
        }
        self.workers.clear();
    }

    /// Simulated crash / poisoned store: slam every socket without a
    /// goodbye.
    fn slam_connections(&mut self) {
        for w in self.workers.values() {
            let _ = w.stream.shutdown(Shutdown::Both);
        }
        self.workers.clear();
    }

    /// Removes a worker and reclaims its lease.
    fn drop_worker(&mut self, id: u64, _why: &str) {
        let Some(w) = self.workers.remove(&id) else {
            return;
        };
        let _ = w.stream.shutdown(Shutdown::Both);
        if let Some(active) = self.campaign.as_mut() {
            let reclaimed = active.leases.reclaim_worker(id);
            if !reclaimed.is_empty() {
                let _reclaim_span = mc_obs::span("serve.reclaim");
                self.reclaims += reclaimed.len() as u64;
                mc_obs::counter("serve.reclaims", reclaimed.len() as u64);
            }
        }
        self.assign_idle();
    }

    /// Offers leases to every idle worker.
    fn assign_idle(&mut self) {
        let idle: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, w)| w.lease.is_none())
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            self.try_assign(id);
        }
    }

    /// Assigns the next pending lease to `id`, skipping leases the store
    /// already covers (a resumed checkpoint can complete a lease before
    /// any worker touches it).
    fn try_assign(&mut self, id: u64) {
        loop {
            let Some(active) = self.campaign.as_mut() else {
                return;
            };
            if !self.workers.contains_key(&id)
                || self.workers.get(&id).is_some_and(|w| w.lease.is_some())
            {
                return;
            }
            let Some(lease) = active.leases.assign_next(id) else {
                return;
            };
            let count = active.leases.count();
            let shard = Shard {
                index: lease,
                count,
            };
            let total = active.spec.total_units();
            let store = &active.store;
            if one_shard_progress(total, shard, |u| store.is_complete(u)).is_complete() {
                active.leases.complete(lease);
                continue;
            }
            let done: Vec<usize> = (0..total)
                .filter(|&u| shard.owns(u) && store.is_complete(u))
                .collect();
            let msg = Message::Assign {
                lease: lease as u64,
                spec: active.spec.clone(),
                shard_index: lease,
                shard_count: count,
                done,
            };
            let _assign_span = mc_obs::span("serve.assign");
            if self.send_to(id, &msg) {
                if let Some(w) = self.workers.get_mut(&id) {
                    w.lease = Some(lease);
                }
                return;
            }
            // The send failed: the worker is gone; its freshly assigned
            // lease goes straight back.
            self.drop_worker(id, "assign write failed");
            return;
        }
    }

    /// Writes one frame to a worker. `false` (and no panic) on failure.
    fn send_to(&mut self, id: u64, msg: &Message) -> bool {
        let Some(w) = self.workers.get_mut(&id) else {
            return false;
        };
        write_frame(&mut w.stream, msg).is_ok()
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.inner.addr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_exp::store::Store;
    use mc_exp::{CatalogOptions, Metric};

    fn tiny_spec() -> CampaignSpec {
        mc_exp::catalog::build("ablation_sigma", &CatalogOptions::default())
            .unwrap()
            .spec
    }

    fn memory_opener() -> StoreOpener {
        Box::new(|spec: &CampaignSpec| Ok((Store::in_memory(spec), ResumeInfo::default())))
    }

    #[test]
    fn submit_is_idempotent_and_rejects_a_second_campaign() {
        let mut hub = Hub {
            opener: memory_opener(),
            workers: BTreeMap::new(),
            next_worker_id: 0,
            campaign: None,
            records: 0,
            duplicates: 0,
            reclaims: 0,
            completed: false,
            killed: false,
            error: None,
        };
        let cfg = CoordinatorConfig::default();
        let spec = tiny_spec();
        assert_eq!(hub.activate(&spec, &cfg).unwrap(), (5, 0));
        assert_eq!(hub.activate(&spec, &cfg).unwrap(), (5, 0), "idempotent");
        let mut other = spec.clone();
        other.seed = 99;
        assert!(matches!(
            hub.activate(&other, &cfg),
            Err(ServeError::Rejected(_))
        ));
    }

    #[test]
    fn records_dedup_and_count_through_the_hub() {
        let mut hub = Hub {
            opener: memory_opener(),
            workers: BTreeMap::new(),
            next_worker_id: 0,
            campaign: None,
            records: 0,
            duplicates: 0,
            reclaims: 0,
            completed: false,
            killed: false,
            error: None,
        };
        let spec = tiny_spec();
        hub.activate(&spec, &CoordinatorConfig::default()).unwrap();
        let u = spec.unit(0);
        let record = UnitRecord {
            unit: u.index,
            point: u.point,
            replica: u.replica,
            seed: u.seed,
            metrics: vec![Metric::new("value", 1.0)],
        };
        hub.accept_record(0, record.clone()).unwrap();
        hub.accept_record(0, record.clone()).unwrap();
        assert_eq!((hub.records, hub.duplicates), (1, 1));
        let mut conflict = record;
        conflict.metrics[0].value = 2.0;
        assert!(hub.accept_record(0, conflict).is_err());
    }

    #[test]
    fn preactivation_marks_resumed_leases_done() {
        let spec = tiny_spec();
        let mut store = Store::in_memory(&spec);
        // Complete stripe 1 of 2 (units 1 and 3) before activation.
        for unit in [1usize, 3] {
            let u = spec.unit(unit);
            store
                .append(UnitRecord {
                    unit: u.index,
                    point: u.point,
                    replica: u.replica,
                    seed: u.seed,
                    metrics: vec![Metric::new("value", 0.0)],
                })
                .unwrap();
        }
        let prefilled = Mutex::new(Some(store));
        let mut hub = Hub {
            opener: Box::new(move |_spec| {
                Ok((
                    prefilled.lock().unwrap().take().expect("opened once"),
                    ResumeInfo::default(),
                ))
            }),
            workers: BTreeMap::new(),
            next_worker_id: 0,
            campaign: None,
            records: 0,
            duplicates: 0,
            reclaims: 0,
            completed: false,
            killed: false,
            error: None,
        };
        let cfg = CoordinatorConfig {
            leases: 2,
            ..CoordinatorConfig::default()
        };
        assert_eq!(hub.activate(&tiny_spec(), &cfg).unwrap(), (5, 2));
        let leases = &hub.campaign.as_ref().unwrap().leases;
        assert_eq!(leases.state(1), crate::lease::LeaseState::Done);
        assert_eq!(leases.state(0), crate::lease::LeaseState::Pending);
    }
}
