//! The lease state machine: pure bookkeeping, no I/O, no clocks.
//!
//! A lease is one `i/n` stripe of the campaign's unit space — exactly the
//! striping `chebymc exp run --shard i/n` uses, so a lease's result set
//! is the same thing a manual sharded run would produce. Each lease walks
//! `Pending → Assigned(worker) → Done`, with one backward edge: a
//! *reclaim* (worker death, heartbeat silence, or a premature
//! `LeaseDone`) moves `Assigned → Pending` so another worker can pick it
//! up. Completion is decided by the caller against the checkpoint store —
//! the table never takes a worker's word for it.

use std::fmt;

/// One lease's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Unowned; assignable.
    Pending,
    /// Owned by a worker.
    Assigned(u64),
    /// Every owned unit is in the store.
    Done,
}

/// The coordinator's lease table: one state per stripe.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    states: Vec<LeaseState>,
}

impl LeaseTable {
    /// A table of `count` pending leases (stripes `0/count` ..
    /// `count-1/count`).
    ///
    /// # Panics
    ///
    /// Panics when `count == 0` — a campaign always has at least one
    /// stripe.
    #[must_use]
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "lease count must be at least 1");
        LeaseTable {
            states: vec![LeaseState::Pending; count],
        }
    }

    /// Number of leases.
    #[must_use]
    pub fn count(&self) -> usize {
        self.states.len()
    }

    /// The lease's current state.
    #[must_use]
    pub fn state(&self, lease: usize) -> LeaseState {
        self.states[lease]
    }

    /// Assigns the first pending lease to `worker`, if any.
    pub fn assign_next(&mut self, worker: u64) -> Option<usize> {
        let lease = self.states.iter().position(|s| *s == LeaseState::Pending)?;
        self.states[lease] = LeaseState::Assigned(worker);
        Some(lease)
    }

    /// Marks a lease done (the caller verified completeness against the
    /// store). Valid from any state: a lease may complete while pending —
    /// its units can arrive as redeliveries through *other* leases'
    /// records never can, but a resumed checkpoint can cover it entirely.
    pub fn complete(&mut self, lease: usize) {
        self.states[lease] = LeaseState::Done;
    }

    /// Returns an `Assigned` lease to `Pending` (reclaim). No-op for
    /// pending or done leases — a worker's stale `LeaseDone` after a
    /// reclaim must not resurrect a finished lease.
    pub fn reclaim(&mut self, lease: usize) {
        if matches!(self.states[lease], LeaseState::Assigned(_)) {
            self.states[lease] = LeaseState::Pending;
        }
    }

    /// Reclaims every lease assigned to `worker`, returning them.
    pub fn reclaim_worker(&mut self, worker: u64) -> Vec<usize> {
        let mut reclaimed = Vec::new();
        for (lease, state) in self.states.iter_mut().enumerate() {
            if *state == LeaseState::Assigned(worker) {
                *state = LeaseState::Pending;
                reclaimed.push(lease);
            }
        }
        reclaimed
    }

    /// The worker currently holding `lease`, if assigned.
    #[must_use]
    pub fn holder(&self, lease: usize) -> Option<u64> {
        match self.states[lease] {
            LeaseState::Assigned(w) => Some(w),
            _ => None,
        }
    }

    /// Whether every lease is done.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.states.iter().all(|s| *s == LeaseState::Done)
    }

    /// Number of pending (assignable) leases.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == LeaseState::Pending)
            .count()
    }
}

impl fmt::Display for LeaseTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let done = self
            .states
            .iter()
            .filter(|s| **s == LeaseState::Done)
            .count();
        let assigned = self
            .states
            .iter()
            .filter(|s| matches!(s, LeaseState::Assigned(_)))
            .count();
        write!(
            f,
            "{done}/{} leases done, {assigned} assigned, {} pending",
            self.states.len(),
            self.pending_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_walk_pending_assigned_done() {
        let mut t = LeaseTable::new(2);
        assert_eq!(t.pending_count(), 2);
        assert_eq!(t.assign_next(7), Some(0));
        assert_eq!(t.holder(0), Some(7));
        assert_eq!(t.assign_next(8), Some(1));
        assert_eq!(t.assign_next(9), None, "no pending lease left");
        t.complete(0);
        assert_eq!(t.state(0), LeaseState::Done);
        assert!(!t.all_done());
        t.complete(1);
        assert!(t.all_done());
    }

    #[test]
    fn reclaim_returns_a_dead_workers_leases() {
        let mut t = LeaseTable::new(3);
        t.assign_next(1);
        t.assign_next(2);
        assert_eq!(t.reclaim_worker(1), vec![0]);
        assert_eq!(t.state(0), LeaseState::Pending);
        assert_eq!(t.holder(1), Some(2), "other workers keep theirs");
        // The reclaimed lease is assignable again.
        assert_eq!(t.assign_next(3), Some(0));
    }

    #[test]
    fn stale_signals_cannot_resurrect_a_done_lease() {
        let mut t = LeaseTable::new(1);
        t.assign_next(1);
        t.complete(0);
        t.reclaim(0);
        t.reclaim_worker(1);
        assert_eq!(t.state(0), LeaseState::Done);
        assert_eq!(t.to_string(), "1/1 leases done, 0 assigned, 0 pending");
    }
}
