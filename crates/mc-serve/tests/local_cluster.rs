//! The service's contract, asserted over in-process loopback clusters:
//! whatever dies — workers mid-stream, the coordinator mid-campaign, or
//! both — the merged store is byte-identical to a serial run, no unit is
//! dropped, and no unit is committed twice.

use mc_exp::run::{run_campaign, RunConfig};
use mc_exp::spec::{CampaignSpec, Param, PointSpec, WorkUnit};
use mc_exp::{ExpError, Metric, Store, UnitRunner};
use mc_fault::{cluster_plan, ClusterPlan, SimDisk};
use mc_serve::{
    read_frame, run_local_cluster, run_worker, submit, write_frame, AddrSource, Coordinator,
    CoordinatorConfig, LocalClusterConfig, Message, RunnerFactory, WorkerConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn spec(points: usize, replicas: usize) -> CampaignSpec {
    CampaignSpec {
        name: "cluster-test".into(),
        seed: 17,
        params: vec![],
        points: (0..points)
            .map(|i| PointSpec::new(format!("p{i}"), vec![Param::new("i", i as f64)]))
            .collect(),
        replicas,
    }
}

/// Deterministic in the unit seed, like every real runner must be.
fn seed_metrics(unit: &WorkUnit) -> Vec<Metric> {
    vec![
        Metric::new("value", (unit.seed % 1000) as f64),
        Metric::new("half", (unit.seed % 1000) as f64 / 2.0),
    ]
}

struct SeedFactory;

impl RunnerFactory for SeedFactory {
    fn runner_for(
        &self,
        _spec: &CampaignSpec,
    ) -> Result<Box<dyn UnitRunner + Send + Sync>, ExpError> {
        Ok(Box::new(|unit: &WorkUnit, _inner: usize| {
            Ok(seed_metrics(unit))
        }))
    }
}

/// The byte-identity reference: a serial single-process run of the same
/// spec.
fn serial_canonical(s: &CampaignSpec) -> String {
    let mut store = Store::in_memory(s);
    let runner = |unit: &WorkUnit, _inner: usize| Ok(seed_metrics(unit));
    run_campaign(
        s,
        &runner,
        &mut store,
        &RunConfig {
            threads: 1,
            ..RunConfig::default()
        },
    )
    .unwrap();
    store.canonical_lines()
}

fn base_config(workers: usize, plan: ClusterPlan) -> LocalClusterConfig {
    LocalClusterConfig {
        workers,
        threads_per_worker: 1,
        leases: 4,
        heartbeat_timeout: Duration::from_millis(300),
        plan,
        torn_tail_on_resume: false,
    }
}

#[test]
fn calm_cluster_is_byte_identical_to_serial() {
    let s = spec(4, 3);
    let report =
        run_local_cluster(&s, &SeedFactory, &base_config(3, ClusterPlan::calm(3))).unwrap();
    assert!(report.final_outcome().completed);
    assert_eq!(report.restarts, 0);
    assert_eq!(report.canonical, serial_canonical(&s));
    assert_eq!(report.final_outcome().completed_units, 12);
    let streamed: u64 = report.workers.iter().map(|w| w.records).sum();
    assert!(streamed >= 12, "every unit was streamed at least once");
}

#[test]
fn a_killed_worker_fails_over_without_losing_or_doubling_units() {
    let s = spec(4, 3);
    let plan = ClusterPlan {
        worker_kill_after: vec![None, Some(2), None],
        coordinator_kill_after: None,
    };
    let report = run_local_cluster(&s, &SeedFactory, &base_config(3, plan)).unwrap();
    assert!(report.final_outcome().completed);
    assert!(report.workers[1].died, "the planned death fired");
    assert!(
        report.reclaims() >= 1,
        "the dead worker's lease was reclaimed"
    );
    assert_eq!(report.canonical, serial_canonical(&s));
}

#[test]
fn a_killed_coordinator_resumes_from_a_torn_checkpoint() {
    let s = spec(4, 3);
    let plan = ClusterPlan {
        worker_kill_after: vec![None, None, None],
        coordinator_kill_after: Some(5),
    };
    let mut cfg = base_config(3, plan);
    cfg.torn_tail_on_resume = true;
    let report = run_local_cluster(&s, &SeedFactory, &cfg).unwrap();
    assert_eq!(report.restarts, 1);
    assert_eq!(report.outcomes.len(), 2);
    assert!(report.outcomes[0].killed && !report.outcomes[0].completed);
    assert!(report.final_outcome().completed);
    // The resumed generation skipped what the checkpoint already held.
    assert!(
        report.outcomes[1].records < 12,
        "resume must not recompute the whole campaign: {:?}",
        report.outcomes
    );
    assert_eq!(report.canonical, serial_canonical(&s));
}

/// The acceptance scenario from the issue: ≥2 workers, one worker killed
/// mid-shard AND the coordinator killed+resumed once, byte-identical
/// merge.
#[test]
fn worker_and_coordinator_deaths_together_still_merge_byte_identical() {
    let s = spec(5, 3);
    let plan = ClusterPlan {
        worker_kill_after: vec![Some(3), None, None],
        coordinator_kill_after: Some(8),
    };
    let mut cfg = base_config(3, plan);
    cfg.torn_tail_on_resume = true;
    let report = run_local_cluster(&s, &SeedFactory, &cfg).unwrap();
    assert_eq!(report.restarts, 1);
    assert!(report.workers[0].died);
    assert!(report.final_outcome().completed);
    assert_eq!(report.final_outcome().completed_units, 15);
    assert_eq!(report.canonical, serial_canonical(&s));
}

/// Property: under seed-derived death plans, lease reassignment never
/// drops a unit (the merged store is complete) and never double-commits
/// one (canonical byte identity with the serial run implies exactly one
/// record per unit; redeliveries surface only in the duplicate counter).
#[test]
fn seeded_death_plans_never_drop_or_double_commit() {
    let s = spec(4, 3);
    let total = s.total_units();
    let reference = serial_canonical(&s);
    let mut faulty = 0;
    let mut restarted = 0;
    for seed in 0..20 {
        let plan = cluster_plan(seed, 3, total);
        faulty += usize::from(plan.is_faulty());
        let report = run_local_cluster(&s, &SeedFactory, &base_config(3, plan.clone()))
            .unwrap_or_else(|e| panic!("seed {seed} (plan {plan:?}): {e}"));
        restarted += report.restarts;
        assert!(
            report.final_outcome().completed,
            "seed {seed}: campaign incomplete"
        );
        assert_eq!(
            report.final_outcome().completed_units,
            total,
            "seed {seed}: dropped units"
        );
        assert_eq!(
            report.canonical, reference,
            "seed {seed}: merged store diverged from serial"
        );
        // Every unit appears exactly once in the canonical store.
        let units: Vec<usize> = report
            .canonical
            .lines()
            .skip(1)
            .map(|line| {
                serde_json::from_str::<mc_exp::UnitRecord>(line)
                    .expect("canonical record parses")
                    .unit
            })
            .collect();
        assert_eq!(units, (0..total).collect::<Vec<_>>(), "seed {seed}");
    }
    assert!(faulty >= 5, "the seed range must actually inject deaths");
    assert!(
        restarted >= 1,
        "some seed must kill and resume the coordinator"
    );
}

/// A worker whose process dies without the socket closing (a "zombie":
/// the TCP connection stays open but nothing is sent) must be detected by
/// the heartbeat sweeper — EOF never fires, so the timeout is the only
/// signal — and its lease reclaimed for a live worker.
#[test]
fn a_zombie_worker_is_timed_out_and_its_lease_reclaimed() {
    let s = spec(4, 3);
    let disk = SimDisk::new();
    let opener = {
        let disk = disk.clone();
        Box::new(move |spec: &CampaignSpec| {
            Store::create_or_resume_io(Box::new(disk.open()), "sim://checkpoint", spec)
        })
    };
    let coordinator = Coordinator::bind(
        CoordinatorConfig {
            listen: "127.0.0.1:0".into(),
            leases: 4,
            heartbeat_timeout: Duration::from_millis(200),
            die_after_records: None,
        },
        opener,
    )
    .unwrap();
    let addr = coordinator.local_addr().to_string();

    let zombie_assigned = AtomicBool::new(false);
    let finished = AtomicBool::new(false);

    let outcome = std::thread::scope(|t| {
        let zombie = t.spawn(|| {
            let mut conn = std::net::TcpStream::connect(&addr).unwrap();
            write_frame(
                &mut conn,
                &Message::Hello {
                    worker: "zombie".into(),
                    threads: 1,
                },
            )
            .unwrap();
            loop {
                match read_frame(&mut conn).unwrap() {
                    Some(Message::Assign { .. }) => break,
                    Some(_) => {}
                    None => panic!("zombie dropped before it was assigned a lease"),
                }
            }
            zombie_assigned.store(true, Ordering::SeqCst);
            // Go silent while keeping the socket open.
            while !finished.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let submitter = t.spawn(|| submit(&addr, &s));
        let run = t.spawn(|| coordinator.run());

        let deadline = Instant::now() + Duration::from_secs(10);
        while !zombie_assigned.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "zombie never got a lease");
            std::thread::sleep(Duration::from_millis(5));
        }
        let source = AddrSource::Fixed(addr.clone());
        let wcfg = WorkerConfig {
            name: "real".into(),
            heartbeat: Duration::from_millis(40),
            ..WorkerConfig::default()
        };
        let worker = t.spawn(move || run_worker(&source, &wcfg, &SeedFactory));

        let outcome = run.join().expect("run thread panicked").unwrap();
        finished.store(true, Ordering::SeqCst);
        zombie.join().expect("zombie thread panicked");
        submitter.join().expect("submit thread panicked").unwrap();
        let wsum = worker.join().expect("worker thread panicked").unwrap();
        assert!(wsum.records >= 12, "the live worker carried the campaign");
        outcome
    });

    assert!(outcome.completed);
    assert!(outcome.reclaims >= 1, "the zombie's lease was reclaimed");
    assert_eq!(coordinator.canonical_lines().unwrap(), serial_canonical(&s));
}
