//! `chebymc` — Chebyshev-based optimistic WCET assignment for
//! mixed-criticality systems.
//!
//! This facade crate re-exports the whole workspace, a reproduction of
//! *"Improving the Timing Behaviour of Mixed-Criticality Systems Using
//! Chebyshev's Theorem"* (Ranjbar et al., DATE 2021):
//!
//! | Module | Contents |
//! |---|---|
//! | [`stats`] | summary statistics, Chebyshev bounds, distributions |
//! | [`task`] | the MC task model and synthetic task-set generation |
//! | [`exec`] | execution-time sampling and the mini static WCET analyser |
//! | [`sched`] | EDF/EDF-VD/Liu schedulability analysis and the runtime simulator |
//! | [`opt`] | the genetic algorithm and grid search |
//! | [`lint`] | static analysis: CFG structure, task-set and config diagnostics |
//! | [`core`] | the paper's scheme: policies, metrics, batch pipelines |
//! | [`exp`] | sharded, resumable experiment campaigns with a crash-safe store |
//! | [`serve`] | the distributed campaign service: coordinator, workers, failover |
//! | [`fault`] | deterministic fault injection and the seeded property harness |
//! | [`obs`] | zero-dependency tracing: spans, counters, histograms, JSONL sink |
//!
//! # Quickstart
//!
//! ```
//! use chebymc::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Generate a dual-criticality workload (or build your own TaskSet).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut ts = generate_mixed_taskset(0.7, &GeneratorConfig::default(), &mut rng)?;
//!
//! // 2. Let the scheme choose optimistic WCETs via Chebyshev + GA.
//! let report = ChebyshevScheme::new().design(&mut ts)?;
//! assert!(report.metrics.schedulable);
//!
//! // 3. Validate the design at runtime with the event simulator.
//! let sim = simulate(&ts, &SimConfig::new(Duration::from_secs(5)))?;
//! assert_eq!(sim.hc_deadline_misses, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use chebymc_core as core;
pub use mc_exec as exec;
pub use mc_exp as exp;
pub use mc_fault as fault;
pub use mc_lint as lint;
pub use mc_obs as obs;
pub use mc_opt as opt;
pub use mc_sched as sched;
pub use mc_serve as serve;
pub use mc_stats as stats;
pub use mc_task as task;

/// The most common imports, bundled.
pub mod prelude {
    pub use chebymc_core::metrics::{design_metrics, DesignMetrics};
    pub use chebymc_core::pipeline::{
        acceptance_ratio, evaluate_policy_over_utilization, BatchConfig, SchedulingApproach,
    };
    pub use chebymc_core::policy::WcetPolicy;
    pub use chebymc_core::scheme::{ChebyshevScheme, DesignReport};
    pub use chebymc_core::CoreError;
    pub use mc_exec::benchmarks;
    pub use mc_exec::{Benchmark, ExecutionModel, ExecutionTrace};
    pub use mc_lint::{LintBundle, LintReport, Severity};
    pub use mc_opt::{GaConfig, ProblemConfig, WcetProblem};
    pub use mc_sched::analysis::{dbf, edf, edf_vd, liu};
    pub use mc_sched::policy::{PolicySpec, PolicyVerdict, RuntimeBehaviour, SchedulingPolicy};
    pub use mc_sched::sim::{
        simulate, JobExecModel, LcPolicy, ModeSwitchPolicy, SimConfig, SimMetrics,
    };
    pub use mc_stats::chebyshev::{n_for_probability, one_sided_bound};
    pub use mc_stats::dist::Dist;
    pub use mc_stats::summary::Summary;
    pub use mc_task::automotive::{generate_automotive_taskset, AutomotiveConfig};
    pub use mc_task::generate::{
        generate_hc_taskset, generate_lo_bounded_taskset, generate_mixed_taskset, uunifast,
        GeneratorConfig,
    };
    pub use mc_task::time::{Duration, Instant};
    pub use mc_task::workload::Workload;
    pub use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_headline_types() {
        use crate::prelude::*;
        // Type-level smoke test: these names must resolve.
        let _ = one_sided_bound(2.0);
        let _ = Duration::from_millis(1);
        let _: Criticality = Criticality::Hi;
        let _ = GeneratorConfig::default();
        let _ = ChebyshevScheme::new();
        let _ = LintReport::new();
    }
}
