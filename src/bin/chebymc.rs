//! `chebymc` — command-line front end for the workspace.
//!
//! ```text
//! chebymc generate --u 0.7 --seed 1 -o workload.json
//! chebymc analyze  workload.json
//! chebymc design   workload.json --seed 1 -o designed.json
//! chebymc design   workload.json --uniform-n 5 -o designed.json
//! chebymc simulate designed.json --seconds 60 --policy degrade:0.5 --model profile
//! chebymc lint     bundle.json --format json
//! chebymc lint     --workload workload.json --benchmark all
//! ```
//!
//! Workload files are the validated JSON format of
//! [`mc_task::workload::Workload`].

use chebymc::prelude::*;
use chebymc::task::workload::Workload;
use rand::SeedableRng;
use std::process::ExitCode;

const USAGE: &str = "\
chebymc — Chebyshev-based WCET assignment for mixed-criticality systems

USAGE:
  chebymc generate [--u <bound>] [--seed <n>] [--p-high <p>] [-o <file>]
      Generate a synthetic dual-criticality workload (default --u 0.7).

  chebymc analyze <workload.json>
      Print design metrics (Eq. 8 schedulability, P_MS, max U_LC^LO).

  chebymc design <workload.json> [--seed <n>] [--uniform-n <n>] [-o <file>]
      Assign optimistic WCETs with the Chebyshev scheme (GA by default,
      or one uniform factor with --uniform-n) and report the metrics.

  chebymc simulate <workload.json> [--seconds <s>] [--seed <n>]
                   [--policy drop|degrade:<f>] [--model profile|lo|hi|p:<prob>]
      Run the discrete-event simulator and report runtime behaviour.

  chebymc wcet <program.prog>
      Statically analyse a program model written in the mc-exec DSL
      (block/loop/if; see fixtures/*.prog) and print BCET/ACET/WCET.

  chebymc lint [bundle.json] [--workload <w.json>] [--program <p.prog>]
               [--benchmark <name>|all] [--format human|json] [-o <file>]
      Static analysis: CFG structure (unbounded/irreducible loops,
      unreachable blocks), task-set invariants, and scheme configuration.
      Diagnostics carry stable codes (C0xx/T0xx/S0xx); exits non-zero
      when any error-severity finding is present.

Workload files are validated JSON; see `chebymc generate` for a template.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "design" => cmd_design(rest),
        "simulate" => cmd_simulate(rest),
        "wcet" => cmd_wcet(rest),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`").into()),
    }
}

/// Pulls `--flag value` out of `args`, returning the remaining positional
/// arguments.
fn parse_flags(
    args: &[String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut i = 0;
    'outer: while i < args.len() {
        for (name, slot) in flags.iter_mut() {
            if args[i] == *name {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {name} needs a value"))?;
                **slot = Some(value.clone());
                i += 2;
                continue 'outer;
            }
        }
        if args[i].starts_with('-') {
            return Err(format!("unknown flag `{}`", args[i]).into());
        }
        positional.push(args[i].clone());
        i += 1;
    }
    Ok(positional)
}

fn load_workload(path: &str) -> Result<Workload, Box<dyn std::error::Error>> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(Workload::load_json(&json)?)
}

fn write_or_print(out: Option<String>, json: &str) -> Result<(), Box<dyn std::error::Error>> {
    match out {
        Some(path) => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("written to {path}");
            Ok(())
        }
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn print_metrics(m: &DesignMetrics) {
    println!("  U_HC^LO      = {:.4}", m.u_hc_lo);
    println!("  U_HC^HI      = {:.4}", m.u_hc_hi);
    println!("  U_LC^LO      = {:.4}", m.u_lc_lo);
    println!("  P_MS bound   = {:.4}", m.p_ms);
    println!("  max U_LC^LO  = {:.4}", m.max_u_lc_lo);
    println!("  objective    = {:.4}", m.objective);
    println!("  schedulable  = {}", m.schedulable);
    for t in &m.per_task {
        println!(
            "    {}: C_LO = {:.3} ms, n = {:.2}, overrun bound = {:.4}",
            t.id,
            t.c_lo / 1e6,
            t.factor,
            t.overrun_bound
        );
    }
}

fn cmd_generate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut u, mut seed, mut p_high, mut out) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--u", &mut u),
            ("--seed", &mut seed),
            ("--p-high", &mut p_high),
            ("-o", &mut out),
        ],
    )?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]).into());
    }
    let u: f64 = u.as_deref().unwrap_or("0.7").parse()?;
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    let mut cfg = GeneratorConfig::default();
    if let Some(p) = p_high {
        cfg.p_high = p.parse()?;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let ts = generate_mixed_taskset(u, &cfg, &mut rng)?;
    let workload = Workload::new(
        format!("synthetic-u{u}-seed{seed}"),
        format!(
            "synthetic dual-criticality workload, bound utilisation {u}, \
             {} tasks ({} HC / {} LC), periods 100-900 ms, 1 GHz (1 cycle = 1 ns)",
            ts.len(),
            ts.hc_count(),
            ts.lc_count()
        ),
        ts,
    );
    write_or_print(out, &workload.to_json()?)
}

fn cmd_analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("analyze needs exactly one workload file".into());
    };
    let workload = load_workload(path)?;
    println!(
        "workload `{}`: {} tasks ({} HC / {} LC)",
        workload.name,
        workload.tasks.len(),
        workload.tasks.hc_count(),
        workload.tasks.lc_count()
    );
    let m = design_metrics(&workload.tasks)?;
    print_metrics(&m);
    let vd = edf_vd::analyze(&workload.tasks);
    if let Some(x) = vd.x {
        println!("  EDF-VD x     = {x:.4}");
    }
    Ok(())
}

fn cmd_design(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut seed, mut uniform_n, mut out) = (None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--seed", &mut seed),
            ("--uniform-n", &mut uniform_n),
            ("-o", &mut out),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err("design needs exactly one workload file".into());
    };
    let mut workload = load_workload(path)?;
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    let report = match uniform_n {
        Some(n) => {
            let n: f64 = n.parse()?;
            ChebyshevScheme::with_seed(seed).design_uniform(&mut workload.tasks, n)?
        }
        None => ChebyshevScheme::with_seed(seed).design(&mut workload.tasks)?,
    };
    println!("designed `{}`:", workload.name);
    print_metrics(&report.metrics);
    workload.description = format!(
        "{} | designed by chebymc (seed {seed}, P_MS bound {:.4})",
        workload.description, report.metrics.p_ms
    );
    if out.is_some() {
        write_or_print(out, &workload.to_json()?)?;
    }
    Ok(())
}

fn cmd_wcet(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("wcet needs exactly one .prog file".into());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let program = chebymc::exec::parse::parse_program(&src)?;
    let report = chebymc::exec::wcet::analyze(&program)?;
    println!("program `{path}`:");
    println!("  basic blocks  = {}", report.block_count);
    println!("  CFG nodes     = {}", report.cfg_node_count);
    println!("  BCET          = {} cycles", report.bcet);
    println!("  ACET estimate = {:.1} cycles", report.acet_estimate);
    println!(
        "  WCET          = {} cycles (tree and CFG analyses agree)",
        report.wcet
    );
    println!("  WCET/ACET gap = {:.1}x", report.wcet_acet_ratio());
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut workload, mut program, mut benchmark, mut format, mut out) =
        (None, None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--workload", &mut workload),
            ("--program", &mut program),
            ("--benchmark", &mut benchmark),
            ("--format", &mut format),
            ("-o", &mut out),
        ],
    )?;
    let mut report = chebymc::lint::LintReport::new();
    let mut inputs = 0usize;

    match positional.as_slice() {
        [] => {}
        [path] => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let bundle = chebymc::lint::LintBundle::from_json(&json)
                .map_err(|e| format!("`{path}` is not a lint bundle: {e}"))?;
            report.merge(bundle.lint());
            inputs += 1;
        }
        _ => return Err("lint takes at most one bundle file".into()),
    }
    if let Some(path) = workload {
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        // Deliberately *not* Workload::load_json: invalid workloads must be
        // lintable, not rejected at parse time.
        report.merge(
            chebymc::lint::lint_workload_json(&json)
                .map_err(|e| format!("`{path}` is not a workload: {e}"))?,
        );
        inputs += 1;
    }
    if let Some(path) = program {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let cfg = chebymc::exec::parse::parse_program(&src)?.to_cfg()?;
        report.merge(chebymc::lint::lint_cfg(&cfg, &path));
        inputs += 1;
    }
    if let Some(name) = benchmark {
        let benches = if name == "all" {
            benchmarks::all()?
        } else {
            vec![benchmarks::by_name(&name)?]
        };
        for b in &benches {
            let cfg = b.program().to_cfg()?;
            report.merge(chebymc::lint::lint_benchmark_cfg(b.name(), &cfg));
        }
        inputs += 1;
    }
    if inputs == 0 {
        return Err("lint needs at least one input (bundle, --workload, \
                    --program, or --benchmark)"
            .into());
    }

    let rendered = match format.as_deref().unwrap_or("human") {
        "human" => report.render_human(),
        "json" => report.render_json()?,
        other => return Err(format!("unknown format `{other}`").into()),
    };
    write_or_print(out, rendered.trim_end())?;
    if report.has_errors() {
        return Err(format!(
            "lint found {} error(s)",
            report.count(chebymc::lint::Severity::Error)
        )
        .into());
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut seconds, mut seed, mut policy, mut model) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--seconds", &mut seconds),
            ("--seed", &mut seed),
            ("--policy", &mut policy),
            ("--model", &mut model),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err("simulate needs exactly one workload file".into());
    };
    let workload = load_workload(path)?;
    let seconds: u64 = seconds.as_deref().unwrap_or("60").parse()?;
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    let lc_policy = match policy.as_deref().unwrap_or("drop") {
        "drop" => LcPolicy::DropAll,
        s if s.starts_with("degrade:") => LcPolicy::Degrade(s["degrade:".len()..].parse()?),
        other => return Err(format!("unknown policy `{other}`").into()),
    };
    let exec_model = match model.as_deref().unwrap_or("profile") {
        "profile" => JobExecModel::Profile,
        "lo" => JobExecModel::FullLoBudget,
        "hi" => JobExecModel::FullHiBudget,
        s if s.starts_with("p:") => JobExecModel::OverrunWithProbability(s["p:".len()..].parse()?),
        other => return Err(format!("unknown execution model `{other}`").into()),
    };
    let cfg = SimConfig {
        horizon: Duration::from_secs(seconds),
        lc_policy,
        exec_model,
        x_factor: None,
        release_jitter: Duration::ZERO,
        seed,
    };
    let m = simulate(&workload.tasks, &cfg)?;
    println!("simulated `{}` for {seconds} s:", workload.name);
    println!(
        "  jobs released        = {} HC + {} LC",
        m.hc_released, m.lc_released
    );
    println!("  mode switches        = {}", m.mode_switches);
    println!("  HC deadline misses   = {}", m.hc_deadline_misses);
    println!("  LC deadline misses   = {}", m.lc_deadline_misses);
    println!("  LC lost to HI mode   = {}", m.lc_lost());
    println!("  LC degraded          = {}", m.lc_degraded);
    println!("  time in HI mode      = {:.2} %", m.hi_fraction() * 100.0);
    println!("  processor busy       = {:.2} %", m.utilization() * 100.0);
    Ok(())
}
