//! `chebymc` — command-line front end for the workspace.
//!
//! ```text
//! chebymc generate --u 0.7 --seed 1 -o workload.json
//! chebymc analyze  workload.json
//! chebymc design   workload.json --seed 1 -o designed.json
//! chebymc design   workload.json --uniform-n 5 -o designed.json
//! chebymc simulate designed.json --seconds 60 --policy degrade:0.5 --model profile
//! chebymc lint     bundle.json --format json
//! chebymc lint     --workload workload.json --benchmark all
//! chebymc exp run fig5 --store fig5.jsonl --sets 50
//! chebymc exp status fig5.jsonl
//! ```
//!
//! Workload files are the validated JSON format of
//! [`mc_task::workload::Workload`].

use chebymc::prelude::*;
use chebymc::task::workload::Workload;
use rand::SeedableRng;
use std::process::ExitCode;

const USAGE: &str = "\
chebymc — Chebyshev-based WCET assignment for mixed-criticality systems

USAGE:
  chebymc generate [--family synthetic|automotive] [--u <bound>] [--seed <n>]
                   [--p-high <p>] [--runnables <n>] [-o <file>]
      Generate a dual-criticality workload (default --u 0.7). The
      default `synthetic` family follows the paper's §V generator;
      `automotive` draws --runnables tasks (default 1000) from the
      Bosch period/share bins with fitted Weibull execution times.

  chebymc analyze <workload.json>
      Print design metrics (Eq. 8 schedulability, P_MS, max U_LC^LO).

  chebymc design <workload.json> [--seed <n>] [--uniform-n <n>] [-o <file>]
      Assign optimistic WCETs with the Chebyshev scheme (GA by default,
      or one uniform factor with --uniform-n) and report the metrics.

  chebymc simulate <workload.json> [--seconds <s>] [--seed <n>]
                   [--policy drop|degrade:<f>|combined:<f>] [--model profile|lo|hi|p:<prob>]
      Run the discrete-event simulator and report runtime behaviour.

  chebymc wcet <program.prog>
      Statically analyse a program model written in the mc-exec DSL
      (block/loop/if; see fixtures/*.prog) and print BCET/ACET/WCET.

  chebymc lint [bundle.json] [--workload <w.json>] [--program <p.prog>]
               [--benchmark <name>|all] [--source] [--root <dir>]
               [--config <lint.toml>] [--threads <n>] [--deny <spec>]
               [--allow <spec>] [--format human|json] [--json] [-o <file>]
      Static analysis: CFG structure (unbounded/irreducible loops,
      unreachable blocks), task-set invariants, scheme configuration,
      campaign specs, and — with --source — the workspace's own Rust
      sources (determinism D0xx and soundness U0xx: unordered hash
      iteration, wall-clock reads, unseeded randomness, undocumented
      unsafe/panics, truncating float casts), honouring the checked-in
      lint.toml allowlist. Diagnostics carry stable codes; the exit
      status is gated on deny-level findings (Error severity by
      default). --deny/--allow take comma-separated classes (D),
      codes (U002), or `warnings`; --allow demotes findings but never
      removes them from the report.

  chebymc exp list
      List the built-in experiment campaigns.

  chebymc exp run <campaign> [--store <file.jsonl>] [--sets <n>]
                  [--samples <n>] [--seed <n>] [--runnables <n>]
                  [--threads <n>] [--shard <i/n>] [--csv <file.csv>]
                  [--trace <file.jsonl>] [--quiet]
      Run (or resume) a campaign against a crash-safe JSONL result
      store: completed units are skipped on restart, shards split the
      units across processes, and every record is fsync'd before it
      counts. `--csv` exports the per-point means once the campaign is
      complete. `--trace` records an observability trace (spans,
      counters, histograms) of the run to a JSONL file; inspect it with
      `chebymc trace summary`.

  chebymc exp status <store.jsonl> [--shards <n>]
      Describe a result store: campaign, fingerprint, completed units.
      --shards breaks completion down per `i/n` stripe — the same
      striping `exp run --shard` and the campaign service use.

  chebymc exp merge -o <out.jsonl> <store.jsonl>...
      Merge shard stores of one campaign into a canonical store
      (records sorted by unit; conflicting records are an error).

  chebymc exp export-csv <store.jsonl> [-o <file.csv>] [--per-unit]
      Export per-point means (or raw per-unit rows) as CSV.

  chebymc serve <campaign> --store <file.jsonl> [--listen <addr>]
                [--leases <n>] [--timeout-ms <n>] [--addr-file <file>]
                [--sets <n>] [--samples <n>] [--seed <n>] [--runnables <n>]
                [-o <merged.jsonl>]
                [--trace <file.jsonl>] [--quiet]
      Coordinate a distributed run of a catalog campaign: listen for
      workers, lease out `i/n` stripes, reclaim leases from dead or
      silent workers, and checkpoint every record to the crash-safe
      store — killing the coordinator and rerunning the same command
      resumes mid-campaign. Prints `listening on <addr>` at startup;
      --addr-file additionally publishes the address to a file that
      workers can poll (it is emptied on completion, telling workers to
      exit). -o writes the canonical merged store once complete —
      byte-identical to a serial `exp run` of the same campaign.

  chebymc worker --connect <addr> | --connect-file <file>
                 [--threads <n>] [--name <s>] [--heartbeat-ms <n>]
                 [--retry-ms <n>] [--throttle-ms <n>]
                 [--trace <file.jsonl>] [--quiet]
      Execute leases for a coordinator. --connect-file re-reads the
      file before every connection attempt, so workers follow a
      restarted coordinator to its new address; an emptied file tells
      the worker to exit cleanly. Workers are stateless — all context
      arrives with each assignment — and reconnect within --retry-ms
      after a lost coordinator.

  chebymc trace summary <trace.jsonl>
      Summarize an observability trace produced by `exp run --trace`
      (or CHEBYMC_TRACE with the bench binaries): per-span durations,
      counters, tracked values, and latency histogram quantiles.

  chebymc fault sweep [--seed <n>] [--count <n>] [--ops <m>]
      Drive the result store through <count> seed-derived crash schedules
      (run → crash → resume → merge on a simulated disk, each session
      crashing within its first <m> I/O operations) and check the crash
      invariant plus canonical byte identity. Any violation is printed
      with the schedule seed that reproduces it; exits non-zero.

  chebymc --version
      Print the version.

Workload files are validated JSON; see `chebymc generate` for a template.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "design" => cmd_design(rest),
        "simulate" => cmd_simulate(rest),
        "wcet" => cmd_wcet(rest),
        "lint" => cmd_lint(rest),
        "exp" => cmd_exp(rest),
        "serve" => cmd_serve(rest),
        "worker" => cmd_worker(rest),
        "trace" => cmd_trace(rest),
        "fault" => cmd_fault(rest),
        "version" | "--version" | "-V" => {
            println!("chebymc {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => match suggest_subcommand(other) {
            Some(near) => {
                Err(format!("unknown subcommand `{other}` (did you mean `{near}`?)").into())
            }
            None => Err(format!("unknown subcommand `{other}`").into()),
        },
    }
}

/// The dispatchable subcommand names, for typo suggestions.
const SUBCOMMANDS: &[&str] = &[
    "generate", "analyze", "design", "simulate", "wcet", "lint", "exp", "serve", "worker", "trace",
    "fault", "help", "version",
];

/// Suggests the nearest valid subcommand when the typo is close enough
/// (edit distance at most 2, and less than the typed word's length).
fn suggest_subcommand(typed: &str) -> Option<&'static str> {
    SUBCOMMANDS
        .iter()
        .map(|&cmd| (edit_distance(typed, cmd), cmd))
        .min()
        .filter(|&(d, _)| d <= 2 && d < typed.chars().count())
        .map(|(_, cmd)| cmd)
}

/// Levenshtein distance between two short strings.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            current.push(sub.min(prev[j + 1] + 1).min(current[j] + 1));
        }
        prev = current;
    }
    prev[b.len()]
}

/// Pulls `--flag value` out of `args`, returning the remaining positional
/// arguments.
fn parse_flags(
    args: &[String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut i = 0;
    'outer: while i < args.len() {
        for (name, slot) in flags.iter_mut() {
            if args[i] == *name {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {name} needs a value"))?;
                **slot = Some(value.clone());
                i += 2;
                continue 'outer;
            }
        }
        if args[i].starts_with('-') {
            return Err(format!("unknown flag `{}`", args[i]).into());
        }
        positional.push(args[i].clone());
        i += 1;
    }
    Ok(positional)
}

fn load_workload(path: &str) -> Result<Workload, Box<dyn std::error::Error>> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(Workload::load_json(&json)?)
}

fn write_or_print(out: Option<String>, json: &str) -> Result<(), Box<dyn std::error::Error>> {
    match out {
        Some(path) => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("written to {path}");
            Ok(())
        }
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn print_metrics(m: &DesignMetrics) {
    println!("  U_HC^LO      = {:.4}", m.u_hc_lo);
    println!("  U_HC^HI      = {:.4}", m.u_hc_hi);
    println!("  U_LC^LO      = {:.4}", m.u_lc_lo);
    println!("  P_MS bound   = {:.4}", m.p_ms);
    println!("  max U_LC^LO  = {:.4}", m.max_u_lc_lo);
    println!("  objective    = {:.4}", m.objective);
    println!("  schedulable  = {}", m.schedulable);
    for t in &m.per_task {
        println!(
            "    {}: C_LO = {:.3} ms, n = {:.2}, overrun bound = {:.4}",
            t.id,
            t.c_lo / 1e6,
            t.factor,
            t.overrun_bound
        );
    }
}

fn cmd_generate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut family, mut u, mut seed, mut p_high, mut runnables, mut out) =
        (None, None, None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--family", &mut family),
            ("--u", &mut u),
            ("--seed", &mut seed),
            ("--p-high", &mut p_high),
            ("--runnables", &mut runnables),
            ("-o", &mut out),
        ],
    )?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]).into());
    }
    let u: f64 = u.as_deref().unwrap_or("0.7").parse()?;
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let workload = match family.as_deref().unwrap_or("synthetic") {
        "synthetic" => {
            if runnables.is_some() {
                return Err("--runnables only applies to --family automotive".into());
            }
            let mut cfg = GeneratorConfig::default();
            if let Some(p) = p_high {
                cfg.p_high = p.parse()?;
            }
            let ts = generate_mixed_taskset(u, &cfg, &mut rng)?;
            Workload::new(
                format!("synthetic-u{u}-seed{seed}"),
                format!(
                    "synthetic dual-criticality workload, bound utilisation {u}, \
                     {} tasks ({} HC / {} LC), periods 100-900 ms, 1 GHz (1 cycle = 1 ns)",
                    ts.len(),
                    ts.hc_count(),
                    ts.lc_count()
                ),
                ts,
            )
        }
        "automotive" => {
            let mut cfg = AutomotiveConfig::default();
            if let Some(p) = p_high {
                cfg.p_high = p.parse()?;
            }
            if let Some(r) = runnables {
                cfg.runnables = r.parse()?;
            }
            let ts = generate_automotive_taskset(u, &cfg, &mut rng)?;
            Workload::new(
                format!("automotive-u{u}-seed{seed}"),
                format!(
                    "Bosch-calibrated automotive workload, bound utilisation {u}, \
                     {} runnables ({} HC / {} LC), period bins 1-1000 ms, fitted \
                     Weibull execution times, 1 GHz (1 cycle = 1 ns)",
                    ts.len(),
                    ts.hc_count(),
                    ts.lc_count()
                ),
                ts,
            )
        }
        other => {
            return Err(format!("unknown family `{other}` (known: synthetic, automotive)").into())
        }
    };
    write_or_print(out, &workload.to_json()?)
}

fn cmd_analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("analyze needs exactly one workload file".into());
    };
    let workload = load_workload(path)?;
    println!(
        "workload `{}`: {} tasks ({} HC / {} LC)",
        workload.name,
        workload.tasks.len(),
        workload.tasks.hc_count(),
        workload.tasks.lc_count()
    );
    let m = design_metrics(&workload.tasks)?;
    print_metrics(&m);
    let vd = edf_vd::analyze(&workload.tasks);
    if let Some(x) = vd.x {
        println!("  EDF-VD x     = {x:.4}");
    }
    Ok(())
}

fn cmd_design(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut seed, mut uniform_n, mut out) = (None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--seed", &mut seed),
            ("--uniform-n", &mut uniform_n),
            ("-o", &mut out),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err("design needs exactly one workload file".into());
    };
    let mut workload = load_workload(path)?;
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    let report = match uniform_n {
        Some(n) => {
            let n: f64 = n.parse()?;
            ChebyshevScheme::with_seed(seed).design_uniform(&mut workload.tasks, n)?
        }
        None => ChebyshevScheme::with_seed(seed).design(&mut workload.tasks)?,
    };
    println!("designed `{}`:", workload.name);
    print_metrics(&report.metrics);
    workload.description = format!(
        "{} | designed by chebymc (seed {seed}, P_MS bound {:.4})",
        workload.description, report.metrics.p_ms
    );
    if out.is_some() {
        write_or_print(out, &workload.to_json()?)?;
    }
    Ok(())
}

fn cmd_wcet(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("wcet needs exactly one .prog file".into());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let program = chebymc::exec::parse::parse_program(&src)?;
    let report = chebymc::exec::wcet::analyze(&program)?;
    println!("program `{path}`:");
    println!("  basic blocks  = {}", report.block_count);
    println!("  CFG nodes     = {}", report.cfg_node_count);
    println!("  BCET          = {} cycles", report.bcet);
    println!("  ACET estimate = {:.1} cycles", report.acet_estimate);
    println!(
        "  WCET          = {} cycles (tree and CFG analyses agree)",
        report.wcet
    );
    println!("  WCET/ACET gap = {:.1}x", report.wcet_acet_ratio());
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    // Boolean flags come out before the `--flag value` parser runs.
    let mut source = false;
    let mut json_flag = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| match a.as_str() {
            "--source" => {
                source = true;
                false
            }
            "--json" => {
                json_flag = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let (mut workload, mut program, mut benchmark, mut format, mut out) =
        (None, None, None, None, None);
    let (mut deny, mut allow, mut threads, mut root, mut config) = (None, None, None, None, None);
    let positional = parse_flags(
        &args,
        &mut [
            ("--workload", &mut workload),
            ("--program", &mut program),
            ("--benchmark", &mut benchmark),
            ("--format", &mut format),
            ("--deny", &mut deny),
            ("--allow", &mut allow),
            ("--threads", &mut threads),
            ("--root", &mut root),
            ("--config", &mut config),
            ("-o", &mut out),
        ],
    )?;
    let gate = chebymc::lint::Gate::parse(deny.as_deref(), allow.as_deref())?;
    if json_flag {
        match format.as_deref() {
            None | Some("json") => format = Some("json".to_string()),
            Some(other) => {
                return Err(format!("--json conflicts with --format {other}").into());
            }
        }
    }
    let mut report = chebymc::lint::LintReport::new();
    let mut inputs = 0usize;

    match positional.as_slice() {
        [] => {}
        [path] => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let bundle = chebymc::lint::LintBundle::from_json(&json)
                .map_err(|e| format!("`{path}` is not a lint bundle: {e}"))?;
            report.merge(bundle.lint());
            inputs += 1;
        }
        _ => return Err("lint takes at most one bundle file".into()),
    }
    if let Some(path) = workload {
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        // Deliberately *not* Workload::load_json: invalid workloads must be
        // lintable, not rejected at parse time.
        report.merge(
            chebymc::lint::lint_workload_json(&json)
                .map_err(|e| format!("`{path}` is not a workload: {e}"))?,
        );
        inputs += 1;
    }
    if let Some(path) = program {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let cfg = chebymc::exec::parse::parse_program(&src)?.to_cfg()?;
        report.merge(chebymc::lint::lint_cfg(&cfg, &path));
        inputs += 1;
    }
    if let Some(name) = benchmark {
        let benches = if name == "all" {
            benchmarks::all()?
        } else {
            vec![benchmarks::by_name(&name)?]
        };
        for b in &benches {
            let cfg = b.program().to_cfg()?;
            report.merge(chebymc::lint::lint_benchmark_cfg(b.name(), &cfg));
        }
        inputs += 1;
    }
    if source {
        let root_dir = std::path::PathBuf::from(root.as_deref().unwrap_or("."));
        let allowlist = match &config {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                chebymc::lint::Allowlist::parse(&text)?
            }
            None => {
                // The checked-in policy file is picked up when present;
                // its absence just means "no suppressions".
                let default = root_dir.join("lint.toml");
                if default.is_file() {
                    let text = std::fs::read_to_string(&default)
                        .map_err(|e| format!("cannot read `{}`: {e}", default.display()))?;
                    chebymc::lint::Allowlist::parse(&text)?
                } else {
                    chebymc::lint::Allowlist::empty()
                }
            }
        };
        let threads: usize = threads.as_deref().unwrap_or("0").parse()?;
        let audit = chebymc::lint::lint_workspace_sources(&root_dir, &allowlist, threads)?;
        eprintln!("source audit: {} files scanned", audit.files_scanned);
        report.merge(audit.report);
        inputs += 1;
    } else if threads.is_some() || root.is_some() || config.is_some() {
        return Err("--threads/--root/--config only apply with --source".into());
    }
    if inputs == 0 {
        return Err("lint needs at least one input (bundle, --workload, \
                    --program, --benchmark, or --source)"
            .into());
    }

    let rendered = match format.as_deref().unwrap_or("human") {
        "human" => report.render_human(),
        "json" => report.render_json()?,
        other => return Err(format!("unknown format `{other}`").into()),
    };
    write_or_print(out, rendered.trim_end())?;
    let denied = gate.count_deny(&report);
    if denied > 0 {
        return Err(format!("lint found {denied} deny-level finding(s)").into());
    }
    Ok(())
}

fn cmd_exp(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(sub) = args.first() else {
        return Err("exp needs a subcommand: list, run, status, merge, or export-csv".into());
    };
    let rest = &args[1..];
    match sub.as_str() {
        "list" => exp_list(),
        "run" => exp_run(rest),
        "status" => exp_status(rest),
        "merge" => exp_merge(rest),
        "export-csv" => exp_export_csv(rest),
        other => Err(format!(
            "unknown exp subcommand `{other}` (expected list, run, status, merge, or export-csv)"
        )
        .into()),
    }
}

/// Starts tracing to `path` when given; pairs with [`finish_trace`].
fn start_trace(path: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(trace_path) = path {
        chebymc::obs::init_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("cannot open trace file `{trace_path}`: {e}"))?;
    }
    Ok(())
}

/// Finalizes a trace started by [`start_trace`] without letting a
/// trace-flush error mask the traced operation's own error.
fn finish_trace<T, E>(
    path: Option<&str>,
    result: Result<T, E>,
) -> Result<T, Box<dyn std::error::Error>>
where
    E: Into<Box<dyn std::error::Error>>,
{
    if path.is_some() {
        let flushed = chebymc::obs::shutdown();
        if result.is_ok() {
            flushed.map_err(|e| format!("cannot finalize trace: {e}"))?;
        }
    }
    let value = result.map_err(Into::into)?;
    if let Some(trace_path) = path {
        eprintln!("trace written to {trace_path} (inspect with `chebymc trace summary`)");
    }
    Ok(value)
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::{catalog, Store};
    use chebymc::serve::{Coordinator, CoordinatorConfig};
    let mut args = args.to_vec();
    let quiet = take_switch(&mut args, "--quiet");
    let (mut store_path, mut sets, mut samples, mut seed, mut runnables) =
        (None, None, None, None, None);
    let (mut listen, mut leases, mut timeout_ms, mut addr_file, mut out, mut trace) =
        (None, None, None, None, None, None);
    let positional = parse_flags(
        &args,
        &mut [
            ("--store", &mut store_path),
            ("--sets", &mut sets),
            ("--samples", &mut samples),
            ("--seed", &mut seed),
            ("--runnables", &mut runnables),
            ("--listen", &mut listen),
            ("--leases", &mut leases),
            ("--timeout-ms", &mut timeout_ms),
            ("--addr-file", &mut addr_file),
            ("-o", &mut out),
            ("--trace", &mut trace),
        ],
    )?;
    let [name] = positional.as_slice() else {
        return Err("serve needs exactly one campaign name (see `chebymc exp list`)".into());
    };
    let opts = catalog::CatalogOptions {
        sets: sets.as_deref().map(str::parse).transpose()?,
        samples: samples.as_deref().map(str::parse).transpose()?,
        seed: seed.as_deref().map(str::parse).transpose()?,
        points: None,
        runnables: runnables.as_deref().map(str::parse).transpose()?,
    };
    let campaign = catalog::build(name, &opts)?;
    let store_path = store_path.ok_or("serve needs --store <file.jsonl>")?;

    let report = chebymc::lint::lint_campaign(&campaign.spec.check(0, 1, Some(&store_path), None));
    if report.has_errors() {
        eprintln!("{}", report.render_human().trim_end());
        return Err(format!(
            "campaign failed static analysis with {} error(s)",
            report.count(chebymc::lint::Severity::Error)
        )
        .into());
    }

    let cfg = CoordinatorConfig {
        listen: listen.unwrap_or_else(|| "127.0.0.1:0".into()),
        leases: leases.as_deref().unwrap_or("8").parse()?,
        heartbeat_timeout: std::time::Duration::from_millis(
            timeout_ms.as_deref().unwrap_or("5000").parse()?,
        ),
        ..CoordinatorConfig::default()
    };
    let checkpoint = std::path::PathBuf::from(&store_path);
    let coordinator = Coordinator::bind(
        cfg,
        Box::new(move |spec| Store::create_or_resume(&checkpoint, spec)),
    )?;
    let (total, done) = coordinator.preload(&campaign.spec)?;
    if done > 0 && !quiet {
        eprintln!("serve: resuming {store_path}: {done} of {total} units already complete");
    }
    let addr = coordinator.local_addr();
    println!("listening on {addr}");
    if let Some(file) = addr_file.as_deref() {
        std::fs::write(file, format!("{addr}\n"))
            .map_err(|e| format!("cannot write `{file}`: {e}"))?;
    }

    start_trace(trace.as_deref())?;
    let result = coordinator.run();
    let outcome = finish_trace(trace.as_deref(), result)?;

    if let Some(file) = addr_file.as_deref() {
        // Withdraw the address: workers polling the file exit cleanly.
        std::fs::write(file, "").map_err(|e| format!("cannot clear `{file}`: {e}"))?;
    }
    if !quiet {
        println!(
            "campaign `{name}`: {}/{} units complete ({} records accepted, \
             {} duplicates absorbed, {} leases reclaimed)",
            outcome.completed_units,
            outcome.total_units,
            outcome.records,
            outcome.duplicates,
            outcome.reclaims
        );
    }
    if let Some(out) = out {
        let canonical = coordinator
            .canonical_lines()
            .ok_or("no campaign was activated")?;
        std::fs::write(&out, canonical).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("merged store written to {out}");
    }
    Ok(())
}

fn cmd_worker(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::serve::{run_worker, AddrSource, CatalogFactory, WorkerConfig};
    let mut args = args.to_vec();
    let quiet = take_switch(&mut args, "--quiet");
    let (mut connect, mut connect_file, mut threads, mut name) = (None, None, None, None);
    let (mut heartbeat_ms, mut retry_ms, mut throttle_ms, mut trace) = (None, None, None, None);
    let positional = parse_flags(
        &args,
        &mut [
            ("--connect", &mut connect),
            ("--connect-file", &mut connect_file),
            ("--threads", &mut threads),
            ("--name", &mut name),
            ("--heartbeat-ms", &mut heartbeat_ms),
            ("--retry-ms", &mut retry_ms),
            ("--throttle-ms", &mut throttle_ms),
            ("--trace", &mut trace),
        ],
    )?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]).into());
    }
    let source = match (connect, connect_file) {
        (Some(addr), None) => AddrSource::Fixed(addr),
        (None, Some(file)) => AddrSource::File(file.into()),
        _ => return Err("worker needs exactly one of --connect or --connect-file".into()),
    };
    let cfg = WorkerConfig {
        name: name.unwrap_or_else(|| format!("worker-{}", std::process::id())),
        threads: threads.as_deref().unwrap_or("0").parse()?,
        heartbeat: std::time::Duration::from_millis(
            heartbeat_ms.as_deref().unwrap_or("1000").parse()?,
        ),
        retry: std::time::Duration::from_millis(retry_ms.as_deref().unwrap_or("10000").parse()?),
        throttle: std::time::Duration::from_millis(throttle_ms.as_deref().unwrap_or("0").parse()?),
        ..WorkerConfig::default()
    };

    start_trace(trace.as_deref())?;
    let result = run_worker(&source, &cfg, &CatalogFactory);
    let summary = finish_trace(trace.as_deref(), result)?;
    if !quiet {
        println!(
            "worker done: {} leases streamed, {} records, {} reconnects",
            summary.leases, summary.records, summary.reconnects
        );
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(sub) = args.first() else {
        return Err("trace needs a subcommand: summary".into());
    };
    match sub.as_str() {
        "summary" => trace_summary(&args[1..]),
        other => Err(format!("unknown trace subcommand `{other}` (expected summary)").into()),
    }
}

fn trace_summary(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::obs::summary::TraceSummary;
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("trace summary needs exactly one trace file".into());
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    let summary = TraceSummary::parse(&text)
        .map_err(|e| format!("`{path}` is not a valid chebymc trace: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

fn cmd_fault(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(sub) = args.first() else {
        return Err("fault needs a subcommand: sweep".into());
    };
    match sub.as_str() {
        "sweep" => fault_sweep(&args[1..]),
        other => Err(format!("unknown fault subcommand `{other}` (expected sweep)").into()),
    }
}

fn fault_sweep(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::fault::{sweep, SweepConfig};
    let (mut seed, mut count, mut ops) = (None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--seed", &mut seed),
            ("--count", &mut count),
            ("--ops", &mut ops),
        ],
    )?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]).into());
    }
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    let count: u64 = count.as_deref().unwrap_or("100").parse()?;
    let ops: u64 = ops.as_deref().unwrap_or("16").parse()?;
    if count == 0 {
        return Err("--count must be at least 1".into());
    }
    if ops == 0 {
        return Err("--ops must be at least 1 (each session must be able to crash)".into());
    }

    let cfg = SweepConfig {
        ops,
        ..SweepConfig::new(seed, count)
    };
    let report = sweep(&cfg);
    println!(
        "fault sweep: {} schedules, {} sessions, {} crashes, {} injected errors",
        report.schedules, report.cycles, report.crashes, report.injected_errors
    );
    if report.ok() {
        println!("invariant held across every schedule");
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
            eprintln!(
                "  reproduce: chebymc fault sweep --seed {} --count 1 --ops {ops}",
                v.seed
            );
        }
        Err(format!(
            "{} invariant violation(s) across {} schedules",
            report.violations.len(),
            report.schedules
        )
        .into())
    }
}

/// Removes a boolean `--flag` from `args`, reporting whether it was there.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() < before
}

fn exp_list() -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::catalog;
    for name in catalog::names() {
        let c = catalog::build(name, &catalog::CatalogOptions::default())?;
        println!(
            "{name:16} {} points × {} replicas = {} units (default scale)",
            c.spec.points.len(),
            c.spec.replicas,
            c.spec.total_units()
        );
    }
    Ok(())
}

fn exp_run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::{
        aggregate, catalog, export_points_csv, run_campaign, RunConfig, Shard, Store,
    };
    let mut args = args.to_vec();
    let quiet = take_switch(&mut args, "--quiet");
    let (mut store_path, mut sets, mut samples, mut seed, mut threads, mut shard, mut csv) =
        (None, None, None, None, None, None, None);
    let (mut trace, mut runnables) = (None, None);
    let positional = parse_flags(
        &args,
        &mut [
            ("--store", &mut store_path),
            ("--sets", &mut sets),
            ("--samples", &mut samples),
            ("--seed", &mut seed),
            ("--runnables", &mut runnables),
            ("--threads", &mut threads),
            ("--shard", &mut shard),
            ("--csv", &mut csv),
            ("--trace", &mut trace),
        ],
    )?;
    let [name] = positional.as_slice() else {
        return Err("exp run needs exactly one campaign name (see `chebymc exp list`)".into());
    };
    let opts = catalog::CatalogOptions {
        sets: sets.as_deref().map(str::parse).transpose()?,
        samples: samples.as_deref().map(str::parse).transpose()?,
        seed: seed.as_deref().map(str::parse).transpose()?,
        points: None,
        runnables: runnables.as_deref().map(str::parse).transpose()?,
    };
    let campaign = catalog::build(name, &opts)?;
    let threads: usize = threads.as_deref().unwrap_or("0").parse()?;
    let shard = match shard.as_deref() {
        Some(s) => Shard::parse(s)?,
        None => Shard::default(),
    };
    let store_path = store_path.unwrap_or_else(|| format!("{name}.jsonl"));

    // Fail fast with named E0xx diagnostics (including the CSV collision
    // check the runner itself cannot see).
    let report = chebymc::lint::lint_campaign(&campaign.spec.check(
        shard.index,
        shard.count,
        Some(&store_path),
        csv.as_deref(),
    ));
    if report.has_errors() {
        eprintln!("{}", report.render_human().trim_end());
        return Err(format!(
            "campaign failed static analysis with {} error(s)",
            report.count(chebymc::lint::Severity::Error)
        )
        .into());
    }

    let (mut store, info) =
        Store::create_or_resume(std::path::Path::new(&store_path), &campaign.spec)?;
    if info.resumed {
        eprintln!(
            "exp: resuming {store_path}: {} of {} units already complete{}",
            store.completed_count(),
            campaign.spec.total_units(),
            if info.truncated_bytes > 0 {
                format!(" (recovered a torn tail of {} bytes)", info.truncated_bytes)
            } else {
                String::new()
            }
        );
    }
    start_trace(trace.as_deref())?;
    let result = run_campaign(
        &campaign.spec,
        campaign.runner.as_ref(),
        &mut store,
        &RunConfig {
            threads,
            shard,
            progress: !quiet,
        },
    );
    let summary = finish_trace(trace.as_deref(), result)?;
    println!(
        "campaign `{name}` (shard {shard}): ran {} units, skipped {} already-complete, \
         store {store_path} holds {}/{} units",
        summary.ran,
        summary.skipped,
        store.completed_count(),
        summary.total_units
    );
    if let Some(csv_path) = csv {
        if store.completed_count() == campaign.spec.total_units() {
            let aggs = aggregate(&campaign.spec, store.records())?;
            std::fs::write(&csv_path, export_points_csv(&aggs))
                .map_err(|e| format!("cannot write `{csv_path}`: {e}"))?;
            println!("per-point csv written to {csv_path}");
        } else {
            eprintln!(
                "exp: store holds {}/{} units; run the remaining shards before \
                 exporting (csv skipped)",
                store.completed_count(),
                campaign.spec.total_units()
            );
        }
    }
    Ok(())
}

fn exp_status(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::{points_complete, shard_progress, Store};
    let mut shards = None;
    let positional = parse_flags(args, &mut [("--shards", &mut shards)])?;
    let [path] = positional.as_slice() else {
        return Err("exp status needs exactly one store file".into());
    };
    let store = Store::load(std::path::Path::new(path), None)?;
    let spec = store.spec();
    let points_done = points_complete(spec, |u| store.is_complete(u));
    println!("store       {path}");
    println!("campaign    {} (seed {})", spec.name, spec.seed);
    println!("fingerprint {}", store.header().fingerprint);
    println!(
        "axis        {} points × {} replicas = {} units",
        spec.points.len(),
        spec.replicas,
        spec.total_units()
    );
    println!(
        "complete    {}/{} units; {points_done}/{} points fully done",
        store.completed_count(),
        spec.total_units(),
        spec.points.len()
    );
    if let Some(n) = shards {
        let n: usize = n.parse()?;
        if n == 0 {
            return Err("--shards must be at least 1".into());
        }
        for p in shard_progress(spec.total_units(), n, |u| store.is_complete(u)) {
            println!(
                "  shard {}  {}/{} units{}",
                p.shard,
                p.done,
                p.units,
                if p.is_complete() { "  (complete)" } else { "" }
            );
        }
    }
    Ok(())
}

fn exp_merge(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::Store;
    let mut out = None;
    let positional = parse_flags(args, &mut [("-o", &mut out)])?;
    let Some(out) = out else {
        return Err("exp merge needs -o <out.jsonl>".into());
    };
    if positional.is_empty() {
        return Err("exp merge needs at least one input store".into());
    }
    let mut stores = Vec::new();
    for path in &positional {
        let expected = stores.first().map(|s: &Store| s.spec().clone());
        stores.push(Store::load(std::path::Path::new(path), expected.as_ref())?);
    }
    let merged = Store::merge(&stores)?;
    std::fs::write(&out, merged.canonical_lines())
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "merged {} store(s) into {out}: {}/{} units",
        positional.len(),
        merged.completed_count(),
        merged.spec().total_units()
    );
    Ok(())
}

fn exp_export_csv(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use chebymc::exp::{aggregate, export_points_csv, export_units_csv, Store};
    let mut args = args.to_vec();
    let per_unit = take_switch(&mut args, "--per-unit");
    let mut out = None;
    let positional = parse_flags(&args, &mut [("-o", &mut out)])?;
    let [path] = positional.as_slice() else {
        return Err("exp export-csv needs exactly one store file".into());
    };
    let store = Store::load(std::path::Path::new(path), None)?;
    let csv = if per_unit {
        export_units_csv(store.spec(), store.records())?
    } else {
        let aggs = aggregate(store.spec(), store.records())?;
        export_points_csv(&aggs)
    };
    write_or_print(out, csv.trim_end())
}

fn cmd_simulate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut seconds, mut seed, mut policy, mut model) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("--seconds", &mut seconds),
            ("--seed", &mut seed),
            ("--policy", &mut policy),
            ("--model", &mut model),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err("simulate needs exactly one workload file".into());
    };
    let workload = load_workload(path)?;
    let seconds: u64 = seconds.as_deref().unwrap_or("60").parse()?;
    let seed: u64 = seed.as_deref().unwrap_or("0").parse()?;
    // Validate degradation fractions here, at parse time, so the user sees
    // `--policy degrade:1.5` rejected with the offending value instead of
    // a downstream `LcPolicy::is_valid` failure.
    let parse_fraction = |raw: &str| -> Result<f64, Box<dyn std::error::Error>> {
        let f: f64 = raw
            .parse()
            .map_err(|e| format!("invalid degradation fraction `{raw}`: {e}"))?;
        if !f.is_finite() || !(0.0..=1.0).contains(&f) {
            return Err(format!(
                "degradation fraction must be a finite value in [0, 1], got `{raw}`"
            )
            .into());
        }
        Ok(f)
    };
    let (lc_policy, mode_switch) = match policy.as_deref().unwrap_or("drop") {
        "drop" => (LcPolicy::DropAll, ModeSwitchPolicy::System),
        s if s.starts_with("degrade:") => (
            LcPolicy::Degrade(parse_fraction(&s["degrade:".len()..])?),
            ModeSwitchPolicy::System,
        ),
        // Boudjadar-style combined switching: contain a single overrun at
        // task level, degrade LC only after a system-level escalation.
        s if s.starts_with("combined:") => (
            LcPolicy::Degrade(parse_fraction(&s["combined:".len()..])?),
            ModeSwitchPolicy::TaskLevelThenSystem,
        ),
        other => {
            return Err(format!(
                "unknown policy `{other}` (expected drop, degrade:<f>, or combined:<f>)"
            )
            .into())
        }
    };
    let exec_model = match model.as_deref().unwrap_or("profile") {
        "profile" => JobExecModel::Profile,
        "lo" => JobExecModel::FullLoBudget,
        "hi" => JobExecModel::FullHiBudget,
        s if s.starts_with("p:") => JobExecModel::OverrunWithProbability(s["p:".len()..].parse()?),
        other => return Err(format!("unknown execution model `{other}`").into()),
    };
    let cfg = SimConfig {
        horizon: Duration::from_secs(seconds),
        lc_policy,
        exec_model,
        x_factor: None,
        release_jitter: Duration::ZERO,
        mode_switch,
        seed,
    };
    let m = simulate(&workload.tasks, &cfg)?;
    println!("simulated `{}` for {seconds} s:", workload.name);
    println!(
        "  jobs released        = {} HC + {} LC",
        m.hc_released, m.lc_released
    );
    println!("  mode switches        = {}", m.mode_switches);
    if cfg.mode_switch == ModeSwitchPolicy::TaskLevelThenSystem {
        println!("  task-level switches  = {}", m.task_level_switches);
    }
    println!("  HC deadline misses   = {}", m.hc_deadline_misses);
    println!("  LC deadline misses   = {}", m.lc_deadline_misses);
    println!("  LC lost to HI mode   = {}", m.lc_lost());
    println!("  LC degraded          = {}", m.lc_degraded);
    println!("  time in HI mode      = {:.2} %", m.hi_fraction() * 100.0);
    println!("  processor busy       = {:.2} %", m.utilization() * 100.0);
    Ok(())
}
