//! Static WCET analysis of the built-in benchmark models — the workspace's
//! OTAWA stand-in in action, reproducing Table I's WCET/ACET gap.
//!
//! Run with: `cargo run --example wcet_analysis`

use chebymc::exec::benchmarks;
use chebymc::exec::program::{BasicBlock, Program};
use chebymc::exec::wcet::analyze;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>8} {:>6}",
        "benchmark", "BCET (cyc)", "ACET est.", "WCET (cyc)", "gap", "blocks"
    );
    for bench in benchmarks::all()? {
        let report = bench.analyze()?;
        println!(
            "{:<12} {:>14} {:>14.0} {:>14} {:>7.1}x {:>6}",
            bench.name(),
            report.bcet,
            report.acet_estimate,
            report.wcet,
            report.wcet_acet_ratio(),
            report.block_count
        );
        assert_eq!(report.wcet as f64, bench.spec().wcet_pes);
    }

    // A custom program: analyse your own control-flow model.
    println!("\ncustom kernel:");
    let program = Program::seq([
        Program::block("init", 120),
        Program::fixed_loop(
            BasicBlock::new("rows", 4),
            64,
            Program::branch(
                BasicBlock::new("bounds-check", 2),
                Program::block("filter-5x5", 180),
                Program::block("copy", 12),
                0.8,
            ),
        ),
        Program::block("commit", 40),
    ]);
    let report = analyze(&program)?;
    println!(
        "  WCET = {} cycles (tree and CFG analyses agree)",
        report.wcet
    );
    println!("  BCET = {} cycles", report.bcet);
    println!("  ACET estimate = {:.1} cycles", report.acet_estimate);
    println!(
        "  {} basic blocks, {} CFG nodes",
        report.block_count, report.cfg_node_count
    );
    Ok(())
}
