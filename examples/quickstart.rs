//! Quickstart: design a synthetic mixed-criticality system with the
//! Chebyshev scheme and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use chebymc::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic dual-criticality workload at bound utilisation 0.7
    //    (HC tasks carry measured (ACET, σ, WCET_pes) profiles).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut ts = generate_mixed_taskset(0.7, &GeneratorConfig::default(), &mut rng)?;
    println!(
        "generated {} tasks ({} HC / {} LC)",
        ts.len(),
        ts.hc_count(),
        ts.lc_count()
    );
    println!(
        "before design: U_HC^LO = {:.3} (pessimistic), U_HC^HI = {:.3}, U_LC^LO = {:.3}",
        ts.u_hc_lo(),
        ts.u_hc_hi(),
        ts.u_lc_lo()
    );

    // 2. Run the paper's scheme: GA-optimised per-task Chebyshev factors.
    let report = ChebyshevScheme::with_seed(1).design(&mut ts)?;
    println!("\nafter design:");
    println!("  U_HC^LO        = {:.3}", report.metrics.u_hc_lo);
    println!("  P_MS (Eq. 10)  = {:.4}", report.metrics.p_ms);
    println!("  max U_LC^LO    = {:.3}", report.metrics.max_u_lc_lo);
    println!("  objective      = {:.4}", report.metrics.objective);
    println!("  schedulable    = {}", report.metrics.schedulable);
    for t in &report.metrics.per_task {
        println!(
            "  {}: n = {:.2}, C_LO = {:.2} ms, overrun bound = {:.4}",
            t.id,
            t.factor,
            t.c_lo / 1e6,
            t.overrun_bound
        );
    }

    // 3. Validate the design at runtime: profile-driven execution times,
    //    EDF-VD dispatching, drop-all LC policy.
    let mut cfg = SimConfig::new(Duration::from_secs(30));
    cfg.seed = 7;
    let sim = simulate(&ts, &cfg)?;
    println!("\nruntime (30 s simulated):");
    println!("  mode switches       = {}", sim.mode_switches);
    println!("  HC deadline misses  = {}", sim.hc_deadline_misses);
    println!("  LC jobs lost        = {}", sim.lc_lost());
    println!("  processor busy      = {:.1} %", sim.utilization() * 100.0);

    assert_eq!(
        sim.hc_deadline_misses, 0,
        "the design must protect HC tasks"
    );
    Ok(())
}
