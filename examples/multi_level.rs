//! Multi-level criticality — the paper's future-work extension in action.
//!
//! A three-level platform (DO-178B DAL-A/B → level 2, DAL-C → level 1,
//! DAL-D/E → level 0) designed with the generalised Chebyshev scheme:
//! per-mode factors `n₀ ≤ n₁` chosen by the GA to make escalation out of
//! the fully-functional mode rare while maximising the admissible
//! level-0 utilisation.
//!
//! Run with: `cargo run --example multi_level`

use chebymc::core::multi::MultiScheme;
use chebymc::prelude::*;
use chebymc::task::multi::{MultiTask, MultiTaskSet};

fn profiled(
    id: u32,
    name: &str,
    level: usize,
    acet_ms: f64,
    sigma_ms: f64,
    wcet_ms: u64,
    period_ms: u64,
) -> Result<MultiTask, Box<dyn std::error::Error>> {
    let wcet = Duration::from_millis(wcet_ms);
    Ok(MultiTask::new(
        TaskId::new(id),
        name,
        level,
        vec![wcet; level + 1], // pessimistic start; the scheme lowers these
        Duration::from_millis(period_ms),
        Some(ExecutionProfile::new(
            acet_ms * 1e6,
            sigma_ms * 1e6,
            wcet_ms as f64 * 1e6,
        )?),
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ts = MultiTaskSet::new(3)?;
    // Level 2 (DAL-A/B): flight-critical.
    ts.push(profiled(0, "flight-control", 2, 3.0, 0.8, 35, 100)?)?;
    ts.push(profiled(1, "engine-monitor", 2, 2.0, 0.5, 25, 80)?)?;
    // Level 1 (DAL-C): mission functions.
    ts.push(profiled(2, "nav-fusion", 1, 4.0, 1.2, 30, 120)?)?;
    // Level 0 (DAL-D/E): comfort functions, single budget.
    ts.push(MultiTask::new(
        TaskId::new(3),
        "cabin-ui",
        0,
        vec![Duration::from_millis(15)],
        Duration::from_millis(150),
        None,
    )?)?;

    println!("three-level platform, {} tasks", ts.len());
    let before = MultiScheme::metrics(&ts)?;
    println!(
        "pessimistic start: schedulable = {} (mode-0 LO demand = every top budget)",
        before.analysis.schedulable
    );

    let report = MultiScheme::with_seed(5).design(&mut ts)?;
    println!("\nafter the generalised Chebyshev design:");
    println!("  per-mode factors n = {:?}", report.factors);
    for (k, p) in report.metrics.escalation_bounds.iter().enumerate() {
        println!("  P(escalate out of mode {k}) <= {:.4}", p);
    }
    println!(
        "  P(reach top mode)        <= {:.6}",
        report.metrics.p_reach_top
    );
    println!(
        "  max level-0 utilisation  =  {:.3}",
        report.metrics.max_u_lowest
    );
    println!(
        "  pairwise EDF-VD verdicts: {:?}",
        report
            .metrics
            .analysis
            .pairs
            .iter()
            .map(|p| p.schedulable)
            .collect::<Vec<_>>()
    );
    println!("\nper-task budgets after design:");
    for t in ts.iter() {
        println!("  {t}");
    }
    assert!(report.metrics.analysis.schedulable);
    Ok(())
}
