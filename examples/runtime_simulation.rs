//! Runtime mode-switching behaviour under different LC policies.
//!
//! Designs one task set with the Chebyshev scheme, then replays it in the
//! discrete-event simulator under Baruah's drop-all policy and Liu's
//! degraded-quality policy, at several overrun intensities.
//!
//! Run with: `cargo run --example runtime_simulation`

use chebymc::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut ts = generate_mixed_taskset(0.75, &GeneratorConfig::default(), &mut rng)?;
    let report = ChebyshevScheme::with_seed(5).design(&mut ts)?;
    println!(
        "designed {} tasks: P_MS bound = {:.3}, schedulable = {}\n",
        ts.len(),
        report.metrics.p_ms,
        report.metrics.schedulable
    );

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "scenario", "switches", "lc lost", "lc degr", "hc miss", "busy%"
    );
    for (label, model) in [
        ("no overruns (C_LO exact)", JobExecModel::FullLoBudget),
        ("profile-driven", JobExecModel::Profile),
        (
            "10% job overrun rate",
            JobExecModel::OverrunWithProbability(0.1),
        ),
        ("worst case (always C_HI)", JobExecModel::FullHiBudget),
    ] {
        for (policy_label, policy) in [
            ("drop-all", LcPolicy::DropAll),
            ("degrade-50%", LcPolicy::Degrade(0.5)),
        ] {
            let cfg = SimConfig {
                horizon: Duration::from_secs(60),
                lc_policy: policy,
                exec_model: model,
                x_factor: None,
                release_jitter: Duration::ZERO,
                mode_switch: ModeSwitchPolicy::System,
                seed: 13,
            };
            let m = simulate(&ts, &cfg)?;
            println!(
                "{:<28} {:>9} {:>9} {:>9} {:>9} {:>7.1}%",
                format!("{label} / {policy_label}"),
                m.mode_switches,
                m.lc_lost(),
                m.lc_degraded,
                m.hc_deadline_misses,
                m.utilization() * 100.0
            );
            assert_eq!(
                m.hc_deadline_misses, 0,
                "an Eq. 8-schedulable design must never miss an HC deadline"
            );
        }
    }

    println!("\nEvery scenario keeps HC deadline misses at zero — the EDF-VD");
    println!("guarantee — while the LC damage scales with overrun intensity.");
    Ok(())
}
