//! An avionics-flavoured case study: a hand-built DO-178B workload whose
//! HC tasks reuse the paper's benchmark execution statistics.
//!
//! The flight-control and sensor-fusion tasks are DAL-A/B (high
//! criticality); telemetry, logging and cabin functions are DAL-C/E (low
//! criticality). The example contrasts a naive λ = 1/4 design with the
//! Chebyshev scheme on the same platform.
//!
//! Run with: `cargo run --example avionics`

use chebymc::exec::platform::Platform;
use chebymc::prelude::*;
use chebymc::task::criticality::Do178bLevel;

/// Builds an HC task from one of the paper's benchmarks: the benchmark's
/// published statistics become the task's execution profile on a 1 GHz
/// platform (1 cycle ≡ 1 ns). `C_LO` starts at `C_HI`; the policies below
/// lower it.
fn hc_from_benchmark(
    id: u32,
    _role: &str,
    bench: &str,
    period: Duration,
) -> Result<McTask, Box<dyn std::error::Error>> {
    Ok(benchmarks::by_name(bench)?.to_mc_task(
        TaskId::new(id),
        Criticality::Hi,
        period,
        &Platform::default(),
    )?)
}

fn lc(id: u32, name: &str, level: Do178bLevel, c: Duration, period: Duration) -> McTask {
    assert!(level.to_criticality().is_low());
    McTask::builder(TaskId::new(id))
        .name(name)
        .period(period)
        .c_lo(c)
        .build()
        .expect("static task parameters are valid")
}

fn build_workload() -> Result<TaskSet, Box<dyn std::error::Error>> {
    let mut ts = TaskSet::new();
    // DAL-A/B: image-pipeline-driven control tasks (periods chosen so the
    // pessimistic HI-mode demand is substantial but feasible).
    ts.push(hc_from_benchmark(
        0,
        "corner-tracker",
        "corner",
        Duration::from_millis(20),
    )?)?;
    ts.push(hc_from_benchmark(
        1,
        "edge-horizon",
        "edge",
        Duration::from_millis(40),
    )?)?;
    ts.push(hc_from_benchmark(
        2,
        "attitude-sort",
        "qsort-100",
        Duration::from_millis(10),
    )?)?;
    // DAL-C/E low-criticality functions.
    ts.push(lc(
        3,
        "telemetry",
        Do178bLevel::C,
        Duration::from_millis(8),
        Duration::from_millis(100),
    ))?;
    ts.push(lc(
        4,
        "cabin-display",
        Do178bLevel::D,
        Duration::from_millis(20),
        Duration::from_millis(300),
    ))?;
    ts.push(lc(
        5,
        "maintenance-log",
        Do178bLevel::E,
        Duration::from_millis(15),
        Duration::from_millis(500),
    ))?;
    Ok(ts)
}

fn describe(label: &str, m: &DesignMetrics) {
    println!("{label}:");
    println!(
        "  U_HC^LO = {:.4}  P_MS = {:.4}  max U_LC^LO = {:.4}  objective = {:.4}  schedulable = {}",
        m.u_hc_lo, m.p_ms, m.max_u_lc_lo, m.objective, m.schedulable
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = build_workload()?;
    println!(
        "avionics workload: {} tasks, U_HC^HI = {:.4}, U_LC^LO = {:.4}\n",
        base.len(),
        base.u_hc_hi(),
        base.u_lc_lo()
    );

    // Baseline: λ = 1/4 of the pessimistic WCET (state-of-the-art policy).
    let mut lambda_ts = base.clone();
    WcetPolicy::LambdaFraction { lambda: 0.25 }.assign(&mut lambda_ts)?;
    let lambda_m = design_metrics(&lambda_ts)?;
    describe("lambda = 1/4 baseline", &lambda_m);

    // The paper's scheme.
    let mut cheb_ts = base.clone();
    let report = ChebyshevScheme::with_seed(11).design(&mut cheb_ts)?;
    describe("\nchebyshev-ga scheme", &report.metrics);

    println!("\nper-task assignment under the scheme:");
    for (task, d) in cheb_ts.hc_tasks().zip(&report.metrics.per_task) {
        println!(
            "  {:16} n = {:6.2}  C_LO = {:9.3} ms  (C_HI = {:9.3} ms)  overrun bound = {:.4}",
            task.name(),
            d.factor,
            d.c_lo / 1e6,
            task.c_hi().as_millis_f64(),
            d.overrun_bound
        );
    }

    // Runtime comparison over two minutes of simulated flight.
    let mut cfg = SimConfig::new(Duration::from_secs(120));
    cfg.seed = 3;
    let sim_lambda = simulate(&lambda_ts, &cfg)?;
    let sim_cheb = simulate(&cheb_ts, &cfg)?;
    println!("\nruntime over 120 s (profile-driven execution times):");
    println!("  {:22} {:>12} {:>12}", "metric", "lambda-1/4", "chebyshev");
    println!(
        "  {:22} {:>12} {:>12}",
        "mode switches", sim_lambda.mode_switches, sim_cheb.mode_switches
    );
    println!(
        "  {:22} {:>12} {:>12}",
        "LC jobs lost",
        sim_lambda.lc_lost(),
        sim_cheb.lc_lost()
    );
    println!(
        "  {:22} {:>12} {:>12}",
        "HC deadline misses", sim_lambda.hc_deadline_misses, sim_cheb.hc_deadline_misses
    );
    println!(
        "  {:22} {:>11.1}% {:>11.1}%",
        "busy",
        sim_lambda.utilization() * 100.0,
        sim_cheb.utilization() * 100.0
    );

    assert_eq!(sim_cheb.hc_deadline_misses, 0);
    println!(
        "\nThe scheme admits {:.1}x the LC utilisation of the λ = 1/4 baseline \
              while keeping the mode-switch bound at {:.2} %.",
        report.metrics.max_u_lc_lo / lambda_m.max_u_lc_lo.max(1e-9),
        report.metrics.p_ms * 100.0
    );
    Ok(())
}
