//! Compares WCET-assignment policies across HC utilisations — a compact,
//! runnable version of the paper's Figs. 4–5 comparison.
//!
//! Run with: `cargo run --release --example policy_comparison`

use chebymc::core::policy::paper_lambda_baselines;
use chebymc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = BatchConfig {
        task_sets: 50, // the paper uses 1000; 50 keeps the example snappy
        seed: 2024,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let u_values = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

    let mut policies: Vec<WcetPolicy> = vec![WcetPolicy::ChebyshevGa {
        ga: GaConfig {
            population_size: 32,
            generations: 30,
            ..GaConfig::default()
        },
        problem: ProblemConfig::default(),
    }];
    policies.extend(paper_lambda_baselines());
    policies.push(WcetPolicy::Acet);

    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>11}",
        "policy", "U_HC^HI", "P_MS", "maxU_LC^LO", "objective"
    );
    for policy in &policies {
        let points = evaluate_policy_over_utilization(&u_values, policy, &batch)?;
        for p in &points {
            println!(
                "{:<22} {:>8.2} {:>9.2}% {:>11.2}% {:>11.4}",
                policy.name(),
                p.u_hc_hi,
                p.mean_p_ms * 100.0,
                p.mean_max_u_lc_lo * 100.0,
                p.mean_objective
            );
        }
        println!();
    }

    println!("Reading the table: the Chebyshev-GA rows should dominate on the");
    println!("objective column — low P_MS *and* high admissible LC utilisation —");
    println!("while λ-range baselines trade one against the other (paper Figs. 4–5).");
    Ok(())
}
