//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`) with a coarse
//! timer instead of criterion's statistical machinery. Benchmarks only
//! execute when the binary is invoked with a `--bench` argument — which
//! `cargo bench` passes — so building or running bench targets in test
//! mode stays cheap.

use std::fmt::Display;
use std::time::Instant;

/// Label for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Runs closures under the timer.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    enabled: bool,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            enabled: std::env::args().any(|a| a == "--bench"),
            sample_size: 20,
        }
    }
}

fn run_one(label: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: sample_size,
        elapsed_ns: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / u128::from(bencher.iters.max(1));
    println!(
        "{label:<40} {per_iter:>12} ns/iter ({} iters)",
        bencher.iters
    );
}

impl Criterion {
    /// Accepted for compatibility with generated harness code; CLI
    /// arguments were already consulted by [`Criterion::default`].
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled {
            run_one(name, self.sample_size, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn effective_sample_size(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        if self.criterion.enabled {
            let label = format!("{}/{}", self.name, id.into().id);
            run_one(&label, self.effective_sample_size(), &mut f);
        }
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if self.criterion.enabled {
            let label = format!("{}/{}", self.name, id.id);
            run_one(&label, self.effective_sample_size(), |b| f(b, input));
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Defines a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_driver_skips_bodies() {
        // Under `cargo test` there is no `--bench` argument, so bench
        // bodies must not run.
        let mut criterion = Criterion::default();
        let mut ran = false;
        criterion.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            ran = true;
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("ga", 16).id, "ga/16");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }
}
