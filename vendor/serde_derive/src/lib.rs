//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! (JSON-`Value`-based) without depending on `syn`/`quote`: the item is
//! parsed directly from the `proc_macro::TokenStream` and the impls are
//! emitted as source strings.
//!
//! Field **types are never parsed** — generated code routes every field
//! through `serde::Serialize::to_value` / `serde::Deserialize::from_value`
//! and lets type inference resolve the impl. Supported shapes: named /
//! tuple / unit structs and enums with unit, tuple, and struct variants
//! (externally tagged, serde_json conventions). The only recognised field
//! attribute is `#[serde(default)]`. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Field {
    name: String,
    has_default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute: '#' + [..]
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                return parse_struct(&toks, i + 1);
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return parse_enum(&toks, i + 1);
            }
            _ => i += 1, // visibility and other modifiers
        }
    }
    panic!("serde_derive: expected a struct or enum");
}

fn ident_at(toks: &[TokenTree], i: usize) -> String {
    match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected identifier, found `{other}`"),
    }
}

fn parse_struct(toks: &[TokenTree], i: usize) -> Input {
    let name = ident_at(toks, i);
    let kind = match toks.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic types are not supported (type `{name}`)")
        }
        other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
    };
    Input { name, kind }
}

fn parse_enum(toks: &[TokenTree], i: usize) -> Input {
    let name = ident_at(toks, i);
    let body = match toks.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic types are not supported (type `{name}`)")
        }
        other => panic!("serde_derive: expected enum body, found {other:?}"),
    };
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attributes(&toks, i);
        if i >= toks.len() {
            break;
        }
        let vname = ident_at(&toks, i);
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip to the comma separating variants (covers `= discr` too).
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name: vname, shape });
    }
    Input {
        name,
        kind: Kind::Enum(variants),
    }
}

/// Skips `#[...]` attributes starting at `i`, returning whether any of
/// them was `#[serde(default)]` alongside the new cursor.
fn scan_attributes(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    let body = g.stream().to_string();
                    let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
                    if compact.starts_with("serde(") && compact.contains("default") {
                        has_default = true;
                    }
                    i += 2;
                } else {
                    panic!("serde_derive: malformed attribute");
                }
            }
            _ => break,
        }
    }
    (i, has_default)
}

fn skip_attributes(toks: &[TokenTree], i: usize) -> usize {
    scan_attributes(toks, i).0
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (next, has_default) = scan_attributes(&toks, i);
        i = next;
        if i >= toks.len() {
            break;
        }
        i = skip_visibility(&toks, i);
        let name = ident_at(&toks, i);
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found `{other}`"),
        }
        i = skip_type(&toks, i);
        fields.push(Field { name, has_default });
    }
    fields
}

fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        // `pub(crate)` / `pub(super)` / `pub(in ...)`
        if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }
    i
}

/// Advances past a type up to (and including) the next top-level comma,
/// tracking `<`/`>` nesting so commas inside generics don't terminate.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Counts comma-separated fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attributes(&toks, i);
        if i >= toks.len() {
            break;
        }
        i = skip_visibility(&toks, i);
        i = skip_type(&toks, i);
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!("let mut __fields = Vec::new();\n{pushes}serde::Value::Object(__fields)")
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_serialize_variant(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => format!("{ty}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n"),
        Shape::Tuple(1) => format!(
            "{ty}::{vn}(__f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
             serde::Serialize::to_value(__f0))]),\n"
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{vn}({binds}) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
                 serde::Value::Array(vec![{items}]))]),\n",
                binds = binds.join(", "),
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__inner.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => {{\n\
                     let mut __inner = Vec::new();\n{pushes}\
                     serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(__inner))])\n\
                 }}\n",
                binds = binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits = gen_named_field_inits(name, fields, "__fields");
            format!(
                "let __fields = match __v {{\n\
                     serde::Value::Object(__fields) => __fields,\n\
                     _ => return Err(serde::DeError::expected(\"object\", \"{name}\")),\n\
                 }};\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = match __v {{\n\
                     serde::Value::Array(__arr) if __arr.len() == {n} => __arr,\n\
                     _ => return Err(serde::DeError::expected(\"array of length {n}\", \"{name}\")),\n\
                 }};\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::UnitStruct => format!("let _ = __v;\nOk({name})"),
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_named_field_inits(ty: &str, fields: &[Field], obj: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let missing = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("serde::Deserialize::missing_field(\"{n}\", \"{ty}\")?")
            };
            format!(
                "{n}: match {obj}.iter().find(|(__k, _)| __k == \"{n}\") {{\n\
                     Some((_, __fv)) => serde::Deserialize::from_value(__fv)?,\n\
                     None => {missing},\n\
                 }},\n"
            )
        })
        .collect()
}

fn gen_deserialize_enum(ty: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{vn}\" => Ok({ty}::{vn}),\n", vn = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| gen_deserialize_variant(ty, v))
        .collect();
    format!(
        "match __v {{\n\
             serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(serde::DeError::unknown_variant(__other, \"{ty}\")),\n\
             }},\n\
             serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                 let (__tag, __inner) = &__tagged[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => Err(serde::DeError::unknown_variant(__other, \"{ty}\")),\n\
                 }}\n\
             }}\n\
             _ => Err(serde::DeError::expected(\n\
                 \"string or single-key object\", \"{ty}\")),\n\
         }}"
    )
}

fn gen_deserialize_variant(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => unreachable!("unit variants handled in the string arm"),
        Shape::Tuple(1) => {
            format!("\"{vn}\" => Ok({ty}::{vn}(serde::Deserialize::from_value(__inner)?)),\n")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "\"{vn}\" => {{\n\
                     let __arr = match __inner {{\n\
                         serde::Value::Array(__arr) if __arr.len() == {n} => __arr,\n\
                         _ => return Err(serde::DeError::expected(\n\
                             \"array of length {n}\", \"{ty}::{vn}\")),\n\
                     }};\n\
                     Ok({ty}::{vn}({items}))\n\
                 }}\n",
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits = gen_named_field_inits(&format!("{ty}::{vn}"), fields, "__vfields");
            format!(
                "\"{vn}\" => {{\n\
                     let __vfields = match __inner {{\n\
                         serde::Value::Object(__vfields) => __vfields,\n\
                         _ => return Err(serde::DeError::expected(\"object\", \"{ty}::{vn}\")),\n\
                     }};\n\
                     Ok({ty}::{vn} {{\n{inits}}})\n\
                 }}\n"
            )
        }
    }
}
