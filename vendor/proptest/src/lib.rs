//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses as a
//! deterministic *generate-only* property tester: each `proptest!` test
//! draws `ProptestConfig::cases` inputs from its strategies with a fixed
//! seed and runs the body. There is no shrinking and no persistence —
//! failures report the panicking assertion directly; seeds are fixed, so
//! every run reproduces the same cases.
//!
//! Supported: range strategies over the common scalar types,
//! tuple strategies (2–5), [`collection::vec`], [`bool::ANY`],
//! `prop_map`, `prop_flat_map`, `prop_recursive` (eagerly expanded to
//! its depth bound), `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, and `prop_assume!`.

pub mod strategy;
pub mod test_runner;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.rng.random::<u64>() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{RcStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(0.0..1.0f64, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    // The IIFE gives `?` (via prop_assume) an early-exit scope
                    // per generated case.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::gen_value(
                                    &($strat),
                                    &mut __rng,
                                );
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    // A rejected case (prop_assume) is simply skipped.
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::RcStrategy::new($arm)),+
        ])
    };
}
