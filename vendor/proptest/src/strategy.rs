//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of a given type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function and
    /// draws from the result.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an existing strategy into one that may nest it.
    ///
    /// This stand-in expands the recursion eagerly to `depth` levels
    /// (`desired_size` and `expected_branch_size` are accepted for
    /// compatibility but unused), so generated values never nest deeper
    /// than `depth`.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> RcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(RcStrategy<Self::Value>) -> S,
    {
        let mut strat = RcStrategy::new(self);
        for _ in 0..depth {
            strat = RcStrategy::new(recurse(strat.clone()));
        }
        strat
    }
}

/// Object-safe adapter behind [`RcStrategy`].
trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A cheaply clonable, type-erased strategy (this stand-in's analogue of
/// `BoxedStrategy`).
pub struct RcStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for RcStrategy<T> {
    fn clone(&self) -> Self {
        RcStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> RcStrategy<T> {
    /// Wraps any strategy producing `T`.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        RcStrategy {
            inner: Rc::new(strategy),
        }
    }
}

impl<T> Strategy for RcStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_gen(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// See [`crate::prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<RcStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Chooses uniformly among `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<RcStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.random_range(0..self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

/// Always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
