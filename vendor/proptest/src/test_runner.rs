//! Test-runner plumbing: configuration, the deterministic RNG, and the
//! rejection marker used by `prop_assume!`.

use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by a test body when `prop_assume!` rejects the case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// The deterministic RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying generator.
    pub rng: rand::rngs::StdRng,
}

impl TestRng {
    /// The fixed-seed RNG used by every `proptest!` test, so runs are
    /// reproducible.
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng {
            rng: rand::rngs::StdRng::seed_from_u64(0x5EED_CAFE_F00D),
        }
    }
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;
    use crate::strategy::Just;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0.25..=0.75f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u64..5).prop_map(|v| v * 2),
            (10u64..15).prop_map(|v| v + 1),
        ]) {
            prop_assert!(x < 10 && x % 2 == 0 || (11..16).contains(&x));
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_nest_to_bounded_depth(
            t in (0u64..100).prop_map(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn flat_map_threads_values(pair in (1u64..10).prop_flat_map(|n| (Just(n), 0u64..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }
}
