//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation of the
//! exact `rand 0.9` API surface it uses:
//!
//! * [`Rng::random`] (only `f64` is exercised, but integers and `bool`
//!   are supported too),
//! * [`Rng::random_range`] over half-open and inclusive ranges of the
//!   common integer types and `f64`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, but with the same
//! determinism guarantees (identical seed → identical sequence on every
//! platform), which is all the workspace relies on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: distr::StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as distr::StandardUniform>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed. Identical seeds yield
    /// identical streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution plumbing behind [`Rng::random`] and [`Rng::random_range`].
pub mod distr {
    use super::RngCore;

    /// Types samplable by [`super::Rng::random`].
    pub trait StandardUniform: Sized {
        /// Draws one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits -> uniform on [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardUniform for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardUniform for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges samplable by [`super::Rng::random_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps a random word onto `[0, span)` with the widening-multiply
    /// method (negligible bias for the span sizes used here).
    fn index(word: u64, span: u64) -> u64 {
        ((u128::from(word) * u128::from(span)) >> 64) as u64
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(index(rng.next_u64(), span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every word is a valid sample.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(index(rng.next_u64(), span) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = f64::sample_standard(rng);
            self.start + unit * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            start + unit * (end - start)
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = f32::sample_standard(rng);
            self.start + unit * (self.end - self.start)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // A state of all zeros is the one fixed point of xoshiro;
            // SplitMix64 cannot produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_samples_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.random_range(10u64..20);
            assert!((10..20).contains(&a));
            let b = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&b));
            let c = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&c));
            let d = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&d));
            let e = rng.random_range(-4i32..4);
            assert!((-4..4).contains(&e));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
