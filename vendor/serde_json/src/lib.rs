//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses
//! JSON text back, matching real serde_json's output style:
//!
//! * compact: `{"a":1,"b":[1,2]}`;
//! * pretty: two-space indent, `"key": value`, empty containers on one
//!   line;
//! * integers print bare, floats always carry a `.` or exponent
//!   (`1.0`, not `1`), non-finite floats print as `null`.

pub use serde::{Number, Value};

use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the
/// `Result` mirrors serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                out.push_str(&s);
                // serde_json (via ryu) always marks floats: `1.0`, not `1`.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json serializes non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(Error::new(format!(
            "unexpected character `{}` at byte {}",
            *c as char, *pos
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::new(format!("expected object key at byte {}", *pos)));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(Error::new(format!("expected `:` at byte {}", *pos)));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::new("unpaired surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a valid &str).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: usize) -> Result<u32, Error> {
    if pos + 4 > bytes.len() {
        return Err(Error::new("truncated unicode escape"));
    }
    let s = std::str::from_utf8(&bytes[pos..pos + 4])
        .map_err(|_| Error::new("invalid unicode escape"))?;
    u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(n)));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Number(Number::NegInt(n)));
        }
    }
    text.parse::<f64>()
        .map(|x| Value::Number(Number::Float(x)))
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::PosInt(1))),
            (
                "b".to_string(),
                Value::Array(vec![
                    Value::Number(Number::Float(1.0)),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.0,true,null]}"#);
    }

    #[test]
    fn pretty_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("id".to_string(), Value::Number(Number::PosInt(1))),
            ("tags".to_string(), Value::Array(vec![])),
            (
                "inner".to_string(),
                Value::Object(vec![("x".to_string(), Value::Number(Number::Float(0.5)))]),
            ),
        ]);
        let expected = "{\n  \"id\": 1,\n  \"tags\": [],\n  \"inner\": {\n    \"x\": 0.5\n  }\n}";
        assert_eq!(to_string_pretty(&v).unwrap(), expected);
    }

    #[test]
    fn floats_always_carry_a_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let huge = to_string(&1e300f64).unwrap();
        assert_eq!(from_str::<f64>(&huge).unwrap(), 1e300);
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"name":"qAsort","xs":[1,-2,3.5],"ok":true,"none":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("qAsort"));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"qAsort","xs":[1,-2,3.5],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn numbers_parse_with_correct_kinds() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5e-3").unwrap(), 2.5e-3);
        assert!(from_str::<u64>("1.5").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn pretty_then_parse_is_identity() {
        let v = Value::Object(vec![(
            "tasks".to_string(),
            Value::Array(vec![Value::Object(vec![
                ("id".to_string(), Value::Number(Number::PosInt(0))),
                (
                    "period".to_string(),
                    Value::Number(Number::PosInt(10_000_000)),
                ),
            ])]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
