//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serialization framework with the same
//! surface syntax as serde: `#[derive(Serialize, Deserialize)]` plus the
//! `#[serde(default)]` field attribute, with `serde_json`-compatible
//! data conventions (externally tagged enums, newtype structs as their
//! inner value, `Option` as value-or-null, missing `Option` fields as
//! `None`, unknown fields ignored).
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! values convert to and from the JSON-shaped [`Value`] tree, which is
//! all this workspace (whose only format is JSON) needs.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Number, Value};

use std::fmt;

/// Conversion into the JSON-shaped [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the JSON-shaped [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Hook invoked by derived impls when a field is absent. The default
    /// is an error; `Option<T>` overrides it to produce `None`, matching
    /// serde's implicitly-optional `Option` fields.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" [`DeError`] unless overridden.
    #[doc(hidden)]
    fn missing_field(field: &'static str, ty: &'static str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field, ty))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error with a custom message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "Expected \<shape\> while deserializing \<type\>".
    #[must_use]
    pub fn expected(shape: &str, ty: &str) -> Self {
        DeError {
            msg: format!("expected {shape} while deserializing {ty}"),
        }
    }

    /// "Missing field \<field\> in \<type\>".
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` in {ty}"),
        }
    }

    /// "Unknown variant \<variant\> for \<type\>".
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &'static str, _ty: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:expr; $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)),
                        "tuple",
                    )),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (2; A.0, B.1)
    (3; A.0, B.1, C.2)
    (4; A.0, B.1, C.2, D.3)
    (5; A.0, B.1, C.2, D.3, E.4)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_defaults_to_none() {
        let got: Result<Option<u32>, _> = Deserialize::missing_field("x", "T");
        assert_eq!(got, Ok(None));
        let got: Result<u32, _> = Deserialize::missing_field("x", "T");
        assert!(got.is_err());
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-42i64).to_value()), Ok(-42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn tuples_round_trip_as_arrays() {
        let v = (1u64, 2.5f64).to_value();
        assert!(matches!(&v, Value::Array(items) if items.len() == 2));
        assert_eq!(<(u64, f64)>::from_value(&v), Ok((1, 2.5)));
    }

    #[test]
    fn unsigned_rejects_negative_and_fractional() {
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
        assert!(u64::from_value(&Value::Number(Number::Float(1.5))).is_err());
    }
}
