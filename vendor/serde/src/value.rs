//! The JSON-shaped value tree shared by `serde` and `serde_json`.

/// A JSON number: unsigned, signed-negative, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(x) => x,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

/// A JSON document. Object fields keep insertion order so that
/// serialized structs list fields in declaration order, like serde_json
/// serializing a struct directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Looks up a field by key, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// `true` when this is `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}
